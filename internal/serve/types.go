package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/url"
	"strconv"

	"repro/internal/obs"
	"repro/internal/slo"
	"repro/internal/units"
)

// CTPValue is an Mtops quantity as it appears in API requests: either a
// JSON number (21125) or a string in the notation the paper and the
// Federal Register use ("21,125", "1500 Mtops", "4.5k"). It marshals back
// as a plain number.
type CTPValue float64

// UnmarshalJSON accepts a number or a ParseMtops-format string.
func (c *CTPValue) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		m, err := units.ParseMtops(s)
		if err != nil {
			return err
		}
		*c = CTPValue(m)
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*c = CTPValue(f)
	return nil
}

// MarshalJSON renders the value as a plain JSON number. Non-finite values
// (which encoding/json cannot represent) are reported as an error rather
// than panicking deep in the encoder.
func (c CTPValue) MarshalJSON() ([]byte, error) {
	v := float64(c)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil, fmt.Errorf("serve: non-finite CTP value")
	}
	return []byte(strconv.FormatFloat(v, 'g', -1, 64)), nil
}

// LicenseRequest is one license query: the system under application
// (named from the catalog, or given directly as a CTP rating), the
// destination, and optionally the end use, the threshold to apply, and
// the date whose threshold-in-force should apply when no explicit
// threshold is given. Exactly one of System and CTP must be set.
type LicenseRequest struct {
	System      string   `json:"system,omitempty"`
	CTP         CTPValue `json:"ctp,omitempty"`
	Destination string   `json:"destination"`
	EndUse      string   `json:"endUse,omitempty"`
	Threshold   CTPValue `json:"threshold,omitempty"`
	Date        float64  `json:"date,omitempty"`
}

// Values encodes the request as /v1/license GET query parameters.
func (r LicenseRequest) Values() url.Values {
	v := url.Values{}
	if r.System != "" {
		v.Set("system", r.System)
	}
	if r.CTP != 0 {
		v.Set("ctp", strconv.FormatFloat(float64(r.CTP), 'g', -1, 64))
	}
	v.Set("dest", r.Destination)
	if r.EndUse != "" {
		v.Set("endUse", r.EndUse)
	}
	if r.Threshold != 0 {
		v.Set("threshold", strconv.FormatFloat(float64(r.Threshold), 'g', -1, 64))
	}
	if r.Date != 0 {
		v.Set("date", strconv.FormatFloat(r.Date, 'g', -1, 64))
	}
	return v
}

// LicenseResponse is the regime's disposition of one license query.
type LicenseResponse struct {
	System         string   `json:"system,omitempty"` // catalog name, when resolved
	Destination    string   `json:"destination"`
	EndUse         string   `json:"endUse,omitempty"`
	Tier           string   `json:"tier"`
	CTPMtops       float64  `json:"ctpMtops"`
	ThresholdMtops float64  `json:"thresholdMtops"`
	Outcome        string   `json:"outcome"`
	Safeguards     []string `json:"safeguards,omitempty"`
	Rationale      string   `json:"rationale"`
}

// BatchRequest is a batched license query.
type BatchRequest struct {
	Requests []LicenseRequest `json:"requests"`
}

// BatchItem is the disposition of one request of a batch: a decision, or
// the error that request produced. Requests are independent; one bad item
// does not fail the batch.
type BatchItem struct {
	Decision *LicenseResponse `json:"decision,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// BatchResponse answers a batched license query in request order.
type BatchResponse struct {
	Decisions []BatchItem `json:"decisions"`
}

// SystemDTO is one catalog record as the API serves it.
type SystemDTO struct {
	Name          string  `json:"name"`
	Vendor        string  `json:"vendor"`
	Origin        string  `json:"origin"`
	Class         string  `json:"class"`
	Year          int     `json:"year"`
	CTPMtops      float64 `json:"ctpMtops"`
	PeakMflops    float64 `json:"peakMflops,omitempty"`
	Processors    int     `json:"processors,omitempty"`
	Processor     string  `json:"processor,omitempty"`
	EntryPriceUSD float64 `json:"entryPriceUSD,omitempty"`
	Installed     int     `json:"installed"`
	Channel       string  `json:"channel"`
	Upgradable    bool    `json:"upgradable"`
	Size          string  `json:"size"`
	Source        string  `json:"source"`
}

// CatalogQuery selects catalog records. Zero fields do not filter.
type CatalogQuery struct {
	Origin     string  // origin name: us, japan, europe, russia, prc, india
	Class      string  // class substring: vector, MPP, SMP, cluster, ...
	Name       string  // name substring
	MinCTP     float64 // lowest CTP, Mtops
	MaxCTP     float64 // highest CTP, Mtops (0 = unbounded)
	Year       float64 // only systems introduced in or before this year
	Indigenous bool    // only the systems of the countries of concern
}

// Values encodes the query as /v1/catalog parameters.
func (q CatalogQuery) Values() url.Values {
	v := url.Values{}
	if q.Origin != "" {
		v.Set("origin", q.Origin)
	}
	if q.Class != "" {
		v.Set("class", q.Class)
	}
	if q.Name != "" {
		v.Set("name", q.Name)
	}
	if q.MinCTP != 0 {
		v.Set("minctp", strconv.FormatFloat(q.MinCTP, 'g', -1, 64))
	}
	if q.MaxCTP != 0 {
		v.Set("maxctp", strconv.FormatFloat(q.MaxCTP, 'g', -1, 64))
	}
	if q.Year != 0 {
		v.Set("year", strconv.FormatFloat(q.Year, 'g', -1, 64))
	}
	if q.Indigenous {
		v.Set("indigenous", "true")
	}
	return v
}

// CatalogResponse answers a catalog query.
type CatalogResponse struct {
	Count   int         `json:"count"`
	Systems []SystemDTO `json:"systems"`
}

// AppDTO is one Chapter 4 application record as the API serves it.
type AppDTO struct {
	Name        string   `json:"name"`
	Mission     string   `json:"mission"`
	Area        string   `json:"area"`
	CTAs        []string `json:"ctas,omitempty"`
	MinMtops    float64  `json:"minMtops"`
	ActualMtops float64  `json:"actualMtops,omitempty"`
	ActualName  string   `json:"actualSystem,omitempty"`
	FirstYear   int      `json:"firstYear,omitempty"`
	RealTime    bool     `json:"realTime"`
	Deployed    bool     `json:"deployed"`
	Granularity string   `json:"granularity"`
	MemoryBound bool     `json:"memoryBound"`
	Source      string   `json:"source"`
}

// AppsQuery selects application records. Zero fields do not filter;
// Deployed and RealTime are tri-state strings ("", "true", "false").
type AppsQuery struct {
	Mission  string  // mission substring: nuclear, cryptology, conventional, operations
	Deployed string  // "true" for operational systems, "false" for RDT&E
	RealTime string  // "true"/"false"
	MinMtops float64 // only applications whose minimum is at least this
	MaxMtops float64 // only applications whose minimum is at most this (0 = unbounded)
}

// Values encodes the query as /v1/apps parameters.
func (q AppsQuery) Values() url.Values {
	v := url.Values{}
	if q.Mission != "" {
		v.Set("mission", q.Mission)
	}
	if q.Deployed != "" {
		v.Set("deployed", q.Deployed)
	}
	if q.RealTime != "" {
		v.Set("realtime", q.RealTime)
	}
	if q.MinMtops != 0 {
		v.Set("min", strconv.FormatFloat(q.MinMtops, 'g', -1, 64))
	}
	if q.MaxMtops != 0 {
		v.Set("max", strconv.FormatFloat(q.MaxMtops, 'g', -1, 64))
	}
	return v
}

// AppsResponse answers an applications query.
type AppsResponse struct {
	Count        int      `json:"count"`
	Applications []AppDTO `json:"applications"`
}

// PremiseDTO is the finding on one basic premise.
type PremiseDTO struct {
	Premise  string  `json:"premise"`
	Holds    bool    `json:"holds"`
	Strength float64 `json:"strength"`
	Evidence string  `json:"evidence"`
}

// RangeDTO is the valid threshold range, when one exists.
type RangeDTO struct {
	LoMtops float64 `json:"loMtops"`
	HiMtops float64 `json:"hiMtops"`
}

// ClusterDTO summarizes one application cluster above the lower bound.
type ClusterDTO struct {
	Category    string  `json:"category"`
	StartMtops  float64 `json:"startMtops"`
	EndMtops    float64 `json:"endMtops"`
	Apps        int     `json:"apps"`
	Significant bool    `json:"significant"`
}

// RecommendationDTO is the framework's threshold under one perspective.
type RecommendationDTO struct {
	Perspective string  `json:"perspective"`
	Mtops       float64 `json:"mtops"`
}

// ProjectionDTO is the frontier growth fit and its forward projections.
type ProjectionDTO struct {
	Formula      string             `json:"formula"`
	AnnualFactor float64            `json:"annualFactor"`
	DoublingTime float64            `json:"doublingTimeYears"`
	Reaches      []ProjectionTarget `json:"reaches,omitempty"`
}

// ProjectionTarget is the projected year the frontier reaches one level.
type ProjectionTarget struct {
	Mtops float64 `json:"mtops"`
	Year  float64 `json:"year"`
}

// ThresholdResponse is one dated application of the basic-premises
// framework — the /v1/threshold answer.
type ThresholdResponse struct {
	Date               float64             `json:"date"`
	LowerBoundMtops    float64             `json:"lowerBoundMtops"`
	LowerBoundSystem   string              `json:"lowerBoundSystem"`
	MaxAvailableMtops  float64             `json:"maxAvailableMtops"`
	MaxAvailableSystem string              `json:"maxAvailableSystem"`
	Premises           []PremiseDTO        `json:"premises"`
	Valid              bool                `json:"valid"`
	Range              *RangeDTO           `json:"range,omitempty"`
	Clusters           []ClusterDTO        `json:"clusters"`
	Recommendations    []RecommendationDTO `json:"recommendations,omitempty"`
	InstallHistogram   []int               `json:"installHistogram"`
	AppHistogram       []int               `json:"appHistogram"`
	Projection         *ProjectionDTO      `json:"projection,omitempty"`
}

// HealthResponse is the /v1/healthz answer. Status is "ok", or
// "degraded" once a mounted fault plan has forced any cache-bypassed
// response; Faults is present only while a fault plan is mounted.
type HealthResponse struct {
	Status        string      `json:"status"`
	UptimeSeconds float64     `json:"uptimeSeconds"`
	Requests      uint64      `json:"requests"`
	InFlight      int         `json:"inFlight"`
	Decisions     CacheStats  `json:"decisionCache"`
	Snapshots     CacheStats  `json:"snapshotCache"`
	Faults        *FaultStats `json:"faults,omitempty"`
	WAL           *WALHealth  `json:"wal,omitempty"`
}

// WALHealth is the decision log's accounting as /v1/healthz reports it,
// present only while a log is mounted: the log's own operation counters,
// the warm-start replay outcome, and the watch-stream state.
type WALHealth struct {
	Appends       uint64 `json:"appends"`
	Fsyncs        uint64 `json:"fsyncs"`
	Rotations     uint64 `json:"rotations"`
	Compactions   uint64 `json:"compactions"`
	Segment       uint64 `json:"segment"`
	Replayed      uint64 `json:"replayed"`
	Mismatches    uint64 `json:"replayMismatches"`
	AppendErrors  uint64 `json:"appendErrors"`
	TornRecords   int    `json:"tornRecords"`
	CorruptRecs   int    `json:"corruptRecords"`
	Watchers      int    `json:"watchers"`
	DroppedEvents uint64 `json:"droppedEvents"`
}

// TracesResponse is the /v1/traces answer: recently completed request
// traces, newest first.
type TracesResponse struct {
	Count  int         `json:"count"`
	Traces []obs.Trace `json:"traces"`
}

// SLOResponse is the /v1/slo answer: the mounted profile in its
// canonical spec form plus one fresh read-at-request evaluation (the
// instant, and per route, per signal, the burn rate and remaining budget
// of every window alongside the ok/warn/page verdict).
type SLOResponse struct {
	Profile string `json:"profile"`
	slo.Evaluation
}

// FlightRecResponse is the /v1/flightrec answer: the flight recorder's
// live capture ring newest-first, plus the pinned anomaly groups —
// captures frozen when an anomaly fired, preserved across ring wrap —
// oldest first.
type FlightRecResponse struct {
	Count    int            `json:"count"`
	Captures []obs.Capture  `json:"captures"`
	Pins     []obs.PinGroup `json:"pins"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}
