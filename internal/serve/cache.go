package serve

import (
	"sync"
)

// LRU is a mutex-guarded least-recently-used cache with hit/miss
// accounting. It is the decision- and snapshot-cache substrate of the
// query service: values stored in it are treated as immutable by every
// consumer (the cache hands back the same pointer it was given), which is
// what makes a cache hit byte-identical to the cold computation it
// replaced.
type LRU[K comparable, V any] struct {
	mu        sync.Mutex
	capacity  int
	entries   map[K]*lruNode[K, V]
	head      *lruNode[K, V] // most recently used
	tail      *lruNode[K, V] // least recently used
	hits      uint64
	misses    uint64
	evictions uint64
}

type lruNode[K comparable, V any] struct {
	key        K
	val        V
	prev, next *lruNode[K, V]
}

// NewLRU returns an LRU holding at most capacity entries. A capacity
// below one is raised to one so the zero-configuration path still caches
// the most recent query.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		capacity: capacity,
		entries:  make(map[K]*lruNode[K, V], capacity),
	}
}

// Get returns the cached value for key and records a hit or a miss. A hit
// moves the entry to the front of the recency list.
func (l *LRU[K, V]) Get(key K) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n, ok := l.entries[key]
	if !ok {
		l.misses++
		var zero V
		return zero, false
	}
	l.hits++
	l.moveToFront(n)
	return n.val, true
}

// Put stores the value under key, evicting the least-recently-used entry
// if the cache is full. Storing an existing key replaces its value and
// refreshes its recency.
func (l *LRU[K, V]) Put(key K, val V) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n, ok := l.entries[key]; ok {
		n.val = val
		l.moveToFront(n)
		return
	}
	if len(l.entries) >= l.capacity {
		l.evictOldest()
	}
	n := &lruNode[K, V]{key: key, val: val}
	l.entries[key] = n
	l.pushFront(n)
}

// Len returns the number of cached entries.
func (l *LRU[K, V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// CacheStats is a point-in-time accounting of one cache.
type CacheStats struct {
	Size      int    `json:"size"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Stats returns the cache's current size and cumulative hit/miss/eviction
// counts.
func (l *LRU[K, V]) Stats() CacheStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return CacheStats{Size: len(l.entries), Hits: l.hits, Misses: l.misses, Evictions: l.evictions}
}

// cachedDecision is one license decision as the decision cache stores
// it: the immutable response struct plus its exact wire rendering, so a
// warm hit writes precomputed bytes instead of re-encoding. body is the
// full response body including the trailing newline; clen is the
// preformatted Content-Length header value, shaped as the one-element
// slice http.Header wants so the hit path assigns it without allocating.
// hash is the FNV-1a-64 digest of body — the fingerprint the decision
// log records so warm-start replay can prove a recomputed body is
// byte-identical to the one served before the restart.
type cachedDecision struct {
	resp *LicenseResponse
	body []byte
	clen []string
	hash uint64
}

// decisionLRU specializes the generic LRU for the license hot path: the
// instantiated cache plus byte-slice keyed lookups. Indexing the entries
// map with string(key) compiles to an allocation-free lookup, so a warm
// GET never materializes its cache key as a string.
type decisionLRU struct {
	LRU[string, *cachedDecision]
}

// newDecisionLRU returns a decisionLRU holding at most capacity entries.
func newDecisionLRU(capacity int) *decisionLRU {
	if capacity < 1 {
		capacity = 1
	}
	l := &decisionLRU{}
	l.capacity = capacity
	l.entries = make(map[string]*lruNode[string, *cachedDecision], capacity)
	return l
}

// GetBytes is Get for a byte-slice key, allocation-free on hit and miss.
func (l *decisionLRU) GetBytes(key []byte) (*cachedDecision, bool) {
	l.mu.Lock()
	n, ok := l.entries[string(key)]
	if !ok {
		l.misses++
		l.mu.Unlock()
		return nil, false
	}
	l.hits++
	l.moveToFront(n)
	v := n.val
	l.mu.Unlock()
	return v, true
}

// GetBatch looks up every key under one lock acquisition, filling out
// (which must be at least as long as keys) and returning the hit count.
// Missing keys leave their slot nil. Empty keys mark slots that resolved
// to an error before the lookup; they are skipped without touching the
// hit/miss accounting, since no cache lookup ever happens for them.
func (l *decisionLRU) GetBatch(keys [][]byte, out []*cachedDecision) int {
	l.mu.Lock()
	hits := 0
	for i, key := range keys {
		if len(key) == 0 {
			out[i] = nil
			continue
		}
		n, ok := l.entries[string(key)]
		if !ok {
			l.misses++
			out[i] = nil
			continue
		}
		l.hits++
		l.moveToFront(n)
		out[i] = n.val
		hits++
	}
	l.mu.Unlock()
	return hits
}

// forEach visits every cached decision, most recently used first, under
// the cache lock without touching the hit/miss accounting or recency.
// Iteration follows the recency list, not the entries map, so visit
// order is a deterministic function of the cache's history. The snapshot
// compactor is the only caller; fn must not re-enter the cache.
func (l *decisionLRU) forEach(fn func(key string, d *cachedDecision)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for n := l.head; n != nil; n = n.next {
		fn(n.key, n.val)
	}
}

// pushFront links n as the new head. Callers hold l.mu.
func (l *LRU[K, V]) pushFront(n *lruNode[K, V]) {
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

// unlink removes n from the recency list. Callers hold l.mu.
func (l *LRU[K, V]) unlink(n *lruNode[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// moveToFront refreshes n's recency. Callers hold l.mu.
func (l *LRU[K, V]) moveToFront(n *lruNode[K, V]) {
	if l.head == n {
		return
	}
	l.unlink(n)
	l.pushFront(n)
}

// evictOldest drops the least-recently-used entry. Callers hold l.mu.
func (l *LRU[K, V]) evictOldest() {
	n := l.tail
	if n == nil {
		return
	}
	l.unlink(n)
	delete(l.entries, n.key)
	l.evictions++
}
