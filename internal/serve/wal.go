package serve

import (
	"context"
	"hash/fnv"
	"log/slog"
	"math"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/units"
	"repro/internal/wal"
)

// The WAL integration: every committed (cached) license decision is
// written through to the mounted decision log, and on boot the log's
// recovery stream is replayed into the decision LRU so a restarted
// daemon's first responses are byte-identical to its pre-restart ones.
//
// The log stores no response bodies — only the canonical decision key
// (which encodes every input the decision is a pure function of), the
// regime applied, and the FNV-1a-64 digest of the exact body served.
// Replay recomputes each decision from its key and admits it to the
// cache only when the recomputed body's digest matches the logged one:
// a decision that cannot be reproduced bit-for-bit (a corrupted key, a
// code change that altered rendering) is counted and logged, never
// served. Degraded (cache-bypassed) responses are never logged, because
// they are never committed to the cache.

// bodyHash digests a rendered response body the way the WAL records it.
func bodyHash(body []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(body)
	return h.Sum64()
}

// parseDecisionKey inverts appendDecisionKey: it splits a canonical
// cache key back into fill arguments. A key whose shape does not parse
// returns false; the caller counts it as unreplayable. (User-supplied
// fields could in principle contain the separator byte — such a key
// fails the shape check or the hash check, so it degrades to a cold
// cache entry rather than a wrong one.)
func parseDecisionKey(key string, a *fillArgs) bool {
	parts := strings.Split(key, string(rune(keySep)))
	if len(parts) != 5 {
		return false
	}
	rated, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return false
	}
	th, err := strconv.ParseFloat(parts[4], 64)
	if err != nil {
		return false
	}
	a.sysName = parts[0]
	a.rated = units.Mtops(rated)
	a.dest = parts[2]
	a.endUse = parts[3]
	a.th = units.Mtops(th)
	return true
}

// warmStart replays the mounted log's recovery stream into the decision
// cache. Records replay in log order, so the cache converges to
// last-write-wins exactly as it would have under the original request
// stream. Returns the number of admitted entries.
func (s *Server) warmStart() int {
	rec := s.wal.Recovery()
	admitted := 0
	var a fillArgs
	for i := range rec.Records {
		r := &rec.Records[i]
		if r.Kind != wal.KindDecision {
			continue
		}
		if !parseDecisionKey(r.Key, &a) {
			s.walMismatches.Add(1)
			s.logWALSkip(r.Key, "unparseable key")
			continue
		}
		resp, herr := buildDecision(&a)
		if herr != nil {
			s.walMismatches.Add(1)
			s.logWALSkip(r.Key, "decision no longer evaluates")
			continue
		}
		d, err := encodeCached(resp)
		if err != nil {
			s.walMismatches.Add(1)
			s.logWALSkip(r.Key, "encode failed")
			continue
		}
		if d.hash != r.Hash {
			s.walMismatches.Add(1)
			s.logWALSkip(r.Key, "body hash mismatch")
			continue
		}
		s.decisions.Put(r.Key, d)
		admitted++
	}
	s.walReplayed.Store(uint64(admitted))
	if s.logger != nil {
		s.logger.LogAttrs(context.Background(), slog.LevelInfo, "wal warm start",
			slog.Int("replayed", admitted),
			slog.Int("records", len(rec.Records)),
			slog.Uint64("mismatches", s.walMismatches.Load()),
			slog.Int("torn", rec.TornRecords),
			slog.Int("corrupt", rec.CorruptRecords),
			slog.Int("droppedSnapshots", rec.DroppedSnapshots))
	}
	return admitted
}

// logWALSkip records one unreplayable log record.
func (s *Server) logWALSkip(key, reason string) {
	if s.logger == nil {
		return
	}
	s.logger.LogAttrs(context.Background(), slog.LevelWarn, "wal replay skip",
		slog.String("reason", reason), slog.String("key", key))
}

// walCommit writes one freshly cached decision through to the log and
// triggers snapshot compaction when enough commits have accumulated.
// Append failures are counted and logged, never surfaced to the request:
// the decision has already been served and cached, and the audit trail
// degrades explicitly (wal_append_errors_total) rather than taking the
// service down with it. The request's flight-recorder capture gets the
// commit outcome, and the commit that changes the threshold regime
// records the transition as a breaker anomaly — so the capture that
// crossed a control boundary is pinned with its surrounding context.
func (s *Server) walCommit(ctx context.Context, skey string, a *fillArgs, d *cachedDecision) {
	if s.wal == nil {
		return
	}
	cs := obs.CaptureStateFrom(ctx)
	err := s.wal.Append(wal.Record{
		Kind:   wal.KindDecision,
		Key:    skey,
		Regime: float64(a.th),
		Hash:   d.hash,
	})
	if err != nil {
		s.walAppendErrs.Add(1)
		cs.SetWAL("append-error")
		if s.logger != nil {
			s.logger.LogAttrs(context.Background(), slog.LevelError, "wal append failed",
				slog.String("key", skey), slog.Any("err", err))
		}
		return
	}
	cs.SetWAL("committed")
	bits := math.Float64bits(float64(a.th))
	if s.walRegimeKnown.Load() {
		if prev := s.walRegimeBits.Swap(bits); prev != bits {
			cs.SetBreaker("regime " + canonicalFloat(math.Float64frombits(prev)) +
				"->" + canonicalFloat(float64(a.th)))
			cs.AddAnomaly("regime-transition")
		}
	} else {
		s.walRegimeBits.Store(bits)
		s.walRegimeKnown.Store(true)
	}
	if every := s.cfg.SnapshotEvery; every > 0 {
		if n := s.walSinceSnap.Add(1); int(n) >= every {
			s.maybeSnapshot()
		}
	}
}

// maybeSnapshot runs one snapshot compaction if no other request is
// already running one. The live set is collected from the decision LRU
// in recency order; the log sorts it by key before writing, so the
// snapshot bytes are independent of both recency and map order.
func (s *Server) maybeSnapshot() {
	if !s.walSnapBusy.CompareAndSwap(false, true) {
		return
	}
	defer s.walSnapBusy.Store(false)
	s.walSinceSnap.Store(0)

	var a fillArgs
	records := make([]wal.Record, 0, s.decisions.Len())
	s.decisions.forEach(func(key string, d *cachedDecision) {
		if !parseDecisionKey(key, &a) {
			return
		}
		records = append(records, wal.Record{
			Kind:   wal.KindDecision,
			Key:    key,
			Regime: float64(a.th),
			Hash:   d.hash,
		})
	})
	if err := s.wal.Snapshot(records); err != nil {
		s.walAppendErrs.Add(1)
		if s.logger != nil {
			s.logger.LogAttrs(context.Background(), slog.LevelError, "wal snapshot failed",
				slog.Any("err", err))
		}
	}
}

// walHealth summarizes the log for /v1/healthz.
func (s *Server) walHealth() *WALHealth {
	if s.wal == nil {
		return nil
	}
	st := s.wal.Stats()
	rec := s.wal.Recovery()
	return &WALHealth{
		Appends:       st.Appends,
		Fsyncs:        st.Fsyncs,
		Rotations:     st.Rotations,
		Compactions:   st.Compactions,
		Segment:       st.Segment,
		Replayed:      s.walReplayed.Load(),
		Mismatches:    s.walMismatches.Load(),
		AppendErrors:  s.walAppendErrs.Load(),
		TornRecords:   rec.TornRecords,
		CorruptRecs:   rec.CorruptRecords,
		Watchers:      s.wal.Events().Subscribers(),
		DroppedEvents: s.wal.Events().Dropped(),
	}
}
