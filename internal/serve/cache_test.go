package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	l := NewLRU[string, int](2)
	if _, ok := l.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	l.Put("a", 1)
	l.Put("b", 2)
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	// "b" is now the oldest; inserting "c" must evict it.
	l.Put("c", 3)
	if _, ok := l.Get("b"); ok {
		t.Error("b survived eviction past capacity")
	}
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Errorf("a evicted out of LRU order (got %d, %v)", v, ok)
	}
	if v, ok := l.Get("c"); !ok || v != 3 {
		t.Errorf("c missing after insert (got %d, %v)", v, ok)
	}
	if l.Len() != 2 {
		t.Errorf("Len() = %d, want 2", l.Len())
	}
}

func TestLRUReplaceRefreshesRecency(t *testing.T) {
	l := NewLRU[string, int](2)
	l.Put("a", 1)
	l.Put("b", 2)
	l.Put("a", 10) // refresh a; b becomes oldest
	l.Put("c", 3)
	if _, ok := l.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := l.Get("a"); !ok || v != 10 {
		t.Errorf("a = %d, %v; want 10, true", v, ok)
	}
}

func TestLRUStats(t *testing.T) {
	l := NewLRU[string, int](4)
	l.Put("a", 1)
	if _, ok := l.Get("a"); !ok {
		t.Fatal("miss on present key")
	}
	if _, ok := l.Get("nope"); ok {
		t.Fatal("hit on absent key")
	}
	st := l.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("Stats() = %+v, want 1 hit, 1 miss, size 1", st)
	}
}

func TestLRUTinyCapacityClamped(t *testing.T) {
	l := NewLRU[int, int](0)
	l.Put(1, 1)
	l.Put(2, 2)
	if l.Len() != 1 {
		t.Errorf("capacity clamp failed: Len() = %d", l.Len())
	}
}

func TestLRUConcurrentAccess(t *testing.T) {
	l := NewLRU[int, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*31 + i) % 100
				l.Put(k, k)
				if v, ok := l.Get(k); ok && v != k {
					t.Errorf("Get(%d) = %d", k, v)
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Len() > 64 {
		t.Errorf("cache grew past capacity: %d", l.Len())
	}
	_ = fmt.Sprintf("%+v", l.Stats()) // Stats under no contention must not race
}
