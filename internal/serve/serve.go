// Package serve is the query service over the reproduction's framework:
// a long-lived, stdlib-only HTTP JSON API that answers the question every
// one-shot CLI in cmd/ answers once — "given a system, a destination, and
// a date, what does the regime say?" — concurrently and repeatedly, the
// way a licensing desk (or a million self-screening exporters) would ask
// it.
//
// Endpoints:
//
//	POST /v1/license    one license decision, or a batch under "requests"
//	GET  /v1/license    the single-decision path as query parameters
//	GET  /v1/catalog    filterable system-catalog queries
//	GET  /v1/apps       filterable application-requirement queries
//	GET  /v1/threshold  the basic-premises snapshot (+ projections)
//	GET  /v1/healthz    liveness, counters, cache statistics
//	GET  /metrics       Prometheus text exposition (deterministic order)
//	GET  /v1/metrics    the same registry as a JSON snapshot
//	GET  /v1/traces     ring buffer of recent request traces
//	GET  /v1/slo        burn-rate verdicts per judged route (needs Config.SLO)
//	GET  /v1/flightrec  flight-recorder captures and pinned anomaly groups
//
// The service is layered over the memoized exhibit substrates of
// internal/report (the study-date snapshot is computed once per process,
// whichever exhibit or request asks first) plus two LRU caches: license
// decisions keyed by the canonicalized (CTP, destination, end use,
// threshold) tuple, and framework snapshots keyed by date. Cached values
// are immutable after first build, so a cache hit is byte-identical to
// the cold computation it replaced — a property the test suite enforces
// under -race.
//
// Everything is error-returning and clock-injected: the only wall-clock
// read in the package is the documented default when no Config.Clock is
// supplied, so tests pin time completely.
package serve

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/parpool"
	"repro/internal/slo"
	"repro/internal/threshold"
	"repro/internal/trend"
	"repro/internal/wal"
)

// Defaults applied by New for zero Config fields.
const (
	DefaultAddr           = "localhost:8095"
	DefaultMaxInFlight    = 64
	DefaultRequestTimeout = 10 * time.Second
	DefaultMaxBatch       = 256
	DefaultCacheSize      = 4096
	DefaultDrainTimeout   = 5 * time.Second
	DefaultTraceCapacity  = 64
	DefaultSnapshotEvery  = 1024
	DefaultMaxWatchers    = 16
)

// maxBodyBytes caps request bodies; a license batch at the default limits
// is far below this.
const maxBodyBytes = 1 << 20

// Config configures a Server. The zero value serves on DefaultAddr with
// the default limits, the wall clock, and no request log.
type Config struct {
	Addr           string        // listen address for ListenAndServe
	MaxInFlight    int           // concurrent requests admitted past the semaphore
	RequestTimeout time.Duration // per-request deadline enforced by the middleware
	MaxBatch       int           // largest accepted /v1/license batch
	BatchWorkers   int           // workers evaluating large batches in parallel; 1 forces inline
	CacheSize      int           // capacity of each LRU cache
	DrainTimeout   time.Duration // how long Shutdown waits for in-flight requests
	TraceCapacity  int           // completed traces kept for /v1/traces; < 0 disables tracing

	// Clock supplies the service's notion of time (request durations,
	// uptime, span timing). Tests inject a fixed or scripted clock; nil
	// means the wall clock.
	Clock func() time.Time

	// Logger receives one structured record per request (request ID,
	// route, status, duration, cache state as attrs). Nil disables
	// request logging.
	Logger *slog.Logger

	// Fault, when non-nil, mounts deterministic fault injection in the
	// middleware: each arrival on an injectable route consumes the plan's
	// next schedule slot and may be answered with an injected 503,
	// delayed, or served with poisoned caches (degraded mode). The
	// observability endpoints and /v1/healthz are never injected, so
	// scrapes and health probes neither consume schedule slots nor lose
	// reachability. Nil disables injection entirely.
	Fault *fault.Plan

	// Sleep performs injected latency pauses. Nil means time.Sleep; the
	// chaos tests inject a recorder so injected delays cost no wall time.
	Sleep func(time.Duration)

	// WAL, when non-nil, mounts the durable decision log: every cached
	// license decision is written through to it, its recovery stream is
	// replayed into the decision cache at New (warm start), and the
	// /v1/watch endpoint streams its commit events. The caller owns the
	// log's lifecycle (Open before New, Close after Serve returns).
	WAL *wal.Log

	// SnapshotEvery triggers snapshot compaction after that many logged
	// decisions; 0 means DefaultSnapshotEvery when a WAL is mounted, and
	// a negative value disables compaction.
	SnapshotEvery int

	// MaxWatchers bounds concurrent /v1/watch streams (they bypass the
	// in-flight semaphore precisely so they cannot starve it, and need
	// their own limit). 0 means DefaultMaxWatchers.
	MaxWatchers int

	// SLO, when active, mounts the burn-rate engine: every judged route
	// gets multi-window burn rates over its availability (and optional
	// latency) objective, evaluated read-at-scrape, served at /v1/slo,
	// exposed as slo_* gauges in /metrics, and published to the watch
	// stream on state transitions. Exemplar collection on the per-route
	// latency histograms is armed with it. An inactive profile leaves
	// the exposition byte-identical to a pre-SLO daemon's.
	SLO slo.Profile

	// SLOSampleEvery is the minimum spacing between retained burn-rate
	// history samples; 0 selects the engine default (15s).
	SLOSampleEvery time.Duration

	// FlightCapacity sizes the flight recorder's capture ring; 0 selects
	// obs.DefaultRecorderCapacity, negative disables the recorder (and
	// /v1/flightrec answers 404).
	FlightCapacity int
}

// Server is the query service: an http.Handler plus the caches and
// counters behind it. Create one with New.
type Server struct {
	cfg     Config
	clock   func() time.Time
	logger  *slog.Logger
	start   time.Time
	handler http.Handler

	met    *serverMetrics // nil disables metric recording
	tracer *obs.Tracer    // nil disables tracing

	// slo is the mounted burn-rate engine (nil without an active SLO
	// profile); flightrec is the always-on black-box recorder (nil only
	// when Config.FlightCapacity is negative).
	slo       *slo.Engine
	flightrec *obs.Recorder

	// walRegimeKnown/walRegimeBits track the threshold regime of the last
	// committed decision, so the capture of the commit that changes it
	// records the transition as a breaker anomaly.
	walRegimeKnown atomic.Bool
	walRegimeBits  atomic.Uint64

	fault *fault.Plan         // nil disables fault injection
	sleep func(time.Duration) // performs injected latency

	// wal is the mounted decision log (nil when Config.WAL is nil), with
	// the serve layer's accounting of its integration: replay admissions,
	// replay rejections, append failures, commits since the last snapshot,
	// the single-compactor latch, live watch streams, and delivered watch
	// events.
	wal           *wal.Log
	walReplayed   atomic.Uint64
	walMismatches atomic.Uint64
	walAppendErrs atomic.Uint64
	walSinceSnap  atomic.Uint64
	walSnapBusy   atomic.Bool
	watchers      atomic.Int64
	watchEvents   atomic.Uint64

	sem      chan struct{}
	requests atomic.Uint64 // request ids / total admitted
	inFlight atomic.Int64

	decisions *decisionLRU
	snapshots *LRU[string, *threshold.Snapshot]

	// flights coalesces concurrent cold fills of one decision key;
	// flightBarrier is a test hook invoked by the coalescing leader
	// between winning the key and computing, nil outside tests.
	flights       flightGroup
	flightBarrier func(key string)

	// systemsByName indexes the catalog by exact name, short-circuiting
	// the linear scan for the common named-system request.
	systemsByName map[string]catalog.System

	// pool evaluates large license batches in parallel; built lazily by
	// batchPool on the first batch big enough to want it.
	pool     *parpool.Pool
	poolOnce sync.Once

	projOnce sync.Once
	projFit  trend.Exponential
	projErr  error
}

// New builds a Server from the config, applying defaults to zero fields.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = DefaultAddr
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.MaxInFlight < 1 {
		return nil, errors.New("serve: MaxInFlight must be at least 1")
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.RequestTimeout < 0 {
		return nil, errors.New("serve: RequestTimeout must be positive")
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxBatch < 1 {
		return nil, errors.New("serve: MaxBatch must be at least 1")
	}
	if cfg.BatchWorkers == 0 {
		cfg.BatchWorkers = defaultBatchWorkers()
	}
	if cfg.BatchWorkers < 1 {
		return nil, errors.New("serve: BatchWorkers must be at least 1")
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	clock := cfg.Clock
	if clock == nil {
		//hpcvet:allow detrand the daemon's documented default is the wall clock; deterministic callers inject Config.Clock
		clock = time.Now
	}
	if cfg.TraceCapacity == 0 {
		cfg.TraceCapacity = DefaultTraceCapacity
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	if cfg.WAL != nil && cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if cfg.MaxWatchers == 0 {
		cfg.MaxWatchers = DefaultMaxWatchers
	}
	if cfg.MaxWatchers < 1 {
		return nil, errors.New("serve: MaxWatchers must be at least 1")
	}
	s := &Server{
		cfg:       cfg,
		clock:     clock,
		logger:    cfg.Logger,
		fault:     cfg.Fault,
		sleep:     sleep,
		wal:       cfg.WAL,
		sem:       make(chan struct{}, cfg.MaxInFlight),
		decisions: newDecisionLRU(cfg.CacheSize),
		snapshots: NewLRU[string, *threshold.Snapshot](cfg.CacheSize),
	}
	all := catalog.All()
	s.systemsByName = make(map[string]catalog.System, len(all))
	for _, sys := range all {
		s.systemsByName[sys.Name] = sys
	}
	if err := cfg.SLO.Validate(); err != nil {
		return nil, err
	}
	if cfg.FlightCapacity >= 0 {
		s.flightrec = obs.NewRecorder(cfg.FlightCapacity)
	}
	// Warm start precedes metric registration so the read-at-scrape WAL
	// instruments report the replay's accounting from the first scrape.
	if s.wal != nil {
		s.warmStart()
	}
	s.met = newServerMetrics(s)
	// The SLO engine mounts after the instrument set it reads from, so
	// its sources and gauges can bind to the registered counters.
	if cfg.SLO.Active() {
		s.initSLO()
	}
	if cfg.TraceCapacity > 0 {
		s.tracer = obs.NewTracer(cfg.TraceCapacity, clock)
	}
	s.start = clock()
	s.handler = s.middleware(s.routes())
	return s, nil
}

// Handler returns the service's http.Handler: the routed endpoints behind
// the bounded-concurrency, timeout, and logging middleware.
func (s *Server) Handler() http.Handler { return s.handler }

// routes builds the endpoint mux.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/license", s.handleLicensePost)
	mux.HandleFunc("GET /v1/license", s.handleLicenseGet)
	mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	mux.HandleFunc("GET /v1/apps", s.handleApps)
	mux.HandleFunc("GET /v1/threshold", s.handleThreshold)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetricsProm)
	mux.HandleFunc("GET /v1/metrics", s.handleMetricsJSON)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/slo", s.handleSLO)
	mux.HandleFunc("GET /v1/flightrec", s.handleFlightRec)
	return mux
}

// Serve accepts connections on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get up
// to DrainTimeout to complete, and stragglers are cut off. It returns nil
// on a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Close the event hub before draining: every /v1/watch stream observes
	// its channel close and returns, so long-lived watchers never hold the
	// drain open. (wal.Log.Close is idempotent about this — the daemon
	// closing the log afterwards is fine.)
	if s.wal != nil {
		s.wal.Events().Close()
	}
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		closeErr := hs.Close()
		<-errc
		if closeErr != nil {
			return closeErr
		}
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// ListenAndServe listens on Config.Addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// canonicalFloat renders a float the one way cache keys use.
func canonicalFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// defaultBatchWorkers sizes the batch evaluation pool: one worker per
// CPU, capped at 8 — license evaluations are short, so more workers buy
// contention, not throughput.
func defaultBatchWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// batchPool returns the lazily built batch evaluation pool, nil when the
// configuration forces inline evaluation. Building it lazily keeps every
// single-request daemon and test server at zero extra goroutines.
func (s *Server) batchPool() *parpool.Pool {
	s.poolOnce.Do(func() {
		if s.cfg.BatchWorkers > 1 {
			s.pool = parpool.New(s.cfg.BatchWorkers)
		}
	})
	return s.pool
}
