package serve

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/wal"
)

// handleWatch streams WAL commit events — threshold-regime transitions
// and injected fault/degraded events — as Server-Sent Events. The
// endpoint exists only when a decision log is mounted (404 otherwise).
//
// Watch streams deliberately sidestep the standard request machinery
// (see middleware): they are long-lived, so holding an in-flight
// semaphore slot would let a handful of watchers starve the query
// endpoints, and http.TimeoutHandler's deadline (plus its non-Flusher
// ResponseWriter) is incompatible with streaming. They get their own
// concurrency bound (Config.MaxWatchers) and their own instruments
// (watch_subscribers, watch_events_total, watch_events_dropped_total),
// registered only when a WAL is mounted — which is also why this
// endpoint is exempt from the idle-scrape byte-identity rule only in
// WAL-mounted deployments, as documented in DESIGN.md.
//
// Wire format, one frame per event:
//
//	id: <seq>
//	event: <regime|fault|degraded>
//	data: <JSON wal.Event>
//
// ?since=N replays ring-buffered events with Seq > N first, so a client
// that reconnects after a drop resumes from its last-seen cursor (bounded
// by the hub's ring; older events are gone).
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	if s.wal == nil {
		writeError(w, http.StatusNotFound, "no decision log mounted; start the daemon with -data-dir")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	if n := s.watchers.Add(1); int(n) > s.cfg.MaxWatchers {
		s.watchers.Add(-1)
		writeError(w, http.StatusServiceUnavailable,
			"watch subscriber limit (%d) reached", s.cfg.MaxWatchers)
		return
	}
	defer s.watchers.Add(-1)

	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad since cursor %q", v)
			return
		}
		since = n
	}

	sub, backlog := s.wal.Events().Subscribe(since, 64)
	defer s.wal.Events().Unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// An immediate comment frame commits the headers so clients observe
	// the stream as established before the first event arrives.
	_, _ = w.Write([]byte(": stream established\n\n"))
	flusher.Flush()

	for _, ev := range backlog {
		if !writeWatchEvent(w, ev) {
			return
		}
	}
	flusher.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				// Hub closed: the daemon is draining. Ending the stream
				// here is what lets graceful shutdown complete without
				// waiting out long-lived watchers.
				return
			}
			if !writeWatchEvent(w, ev) {
				return
			}
			s.watchEvents.Add(1)
			flusher.Flush()
		}
	}
}

// writeWatchEvent renders one SSE frame; false means the client is gone.
func writeWatchEvent(w http.ResponseWriter, ev wal.Event) bool {
	data, err := json.Marshal(ev)
	if err != nil {
		return false
	}
	buf := make([]byte, 0, len(data)+64)
	buf = append(buf, "id: "...)
	buf = strconv.AppendUint(buf, ev.Seq, 10)
	buf = append(buf, "\nevent: "...)
	buf = append(buf, string(ev.Kind)...)
	buf = append(buf, "\ndata: "...)
	buf = append(buf, data...)
	buf = append(buf, '\n', '\n')
	_, werr := w.Write(buf)
	return werr == nil
}

// WatchEvent is the decoded form of one /v1/watch event, re-exported so
// API consumers need not import internal/wal.
type WatchEvent = wal.Event
