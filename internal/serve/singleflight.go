package serve

import (
	"context"
	"net/http"
	"sync"
)

// flightGroup coalesces concurrent cold fills of one canonical decision
// key: the first arrival becomes the leader and computes, everyone else
// blocks on the leader's result. Combined with the immutability of
// cached decisions, this extends the hit≡cold byte-identity contract to
// coalesced waiters — they share the leader's *cachedDecision, so their
// bodies are identical by construction — while a thundering herd on one
// cold key costs exactly one evaluation.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight fill. done closes after dec and err are
// final.
type flightCall struct {
	done chan struct{}
	dec  *cachedDecision
	err  error
}

// flightDo runs the fill for key, coalescing with an in-flight leader if
// one exists. coalesced reports whether this caller waited on another's
// computation. The key is only materialized as a string on the leader
// path; waiters index the map allocation-free.
func (s *Server) flightDo(ctx context.Context, key []byte, a *fillArgs) (dec *cachedDecision, coalesced bool, err error) {
	g := &s.flights
	g.mu.Lock()
	if c, ok := g.calls[string(key)]; ok {
		g.mu.Unlock()
		s.met.flightWait()
		<-c.done
		return c.dec, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	skey := string(key)
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	g.calls[skey] = c
	g.mu.Unlock()

	filled := false
	defer func() {
		// A panicking fill (impossible by construction, but the waiters
		// must not hang on it) surfaces as a 500 to every waiter.
		if !filled {
			c.err = httpErr(http.StatusInternalServerError, "license fill failed")
		}
		g.mu.Lock()
		delete(g.calls, skey)
		g.mu.Unlock()
		close(c.done)
	}()
	s.met.flightLead()
	c.dec, c.err = s.fillDecision(ctx, skey, a)
	filled = true
	return c.dec, false, c.err
}
