package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/regime"
	"repro/internal/report"
	"repro/internal/safeguards"
	"repro/internal/units"
)

// Shared header values for the license hot path. http.Header is a plain
// map, so assigning these package-level slices directly writes a response
// header without allocating; the slices are never mutated.
var (
	headerJSON      = []string{"application/json"}
	headerCacheHit  = []string{"hit"}
	headerCacheMiss = []string{"miss"}
)

// keySep separates the fields of a canonical decision cache key.
const keySep = 0x1f

// batchParallelMin is the number of uncached batch items below which the
// fill loop runs inline: handing a handful of evaluations to the worker
// pool costs more in coordination than the evaluations themselves.
const batchParallelMin = 32

// fillArgs is a resolved license request: the canonicalized inputs a
// decision is a pure function of. It is passed by pointer through the
// cache-fill path instead of being captured in a closure, which is what
// keeps the warm path free of closure allocations.
type fillArgs struct {
	sysName string
	dest    string
	endUse  string
	rated   units.Mtops
	th      units.Mtops
}

// batchSlot is one batch item's state as it moves through the three batch
// phases (resolve, batched cache lookup, parallel fill).
type batchSlot struct {
	args   fillArgs
	dec    *cachedDecision
	errMsg string
	ok     bool // resolved without error
}

// scratch is the pooled per-request workspace of the license endpoints:
// the parsed request, the canonical cache key, the body read/assembly
// buffer, and the batch working set all live here, so a warm request
// borrows memory instead of allocating it. Byte and slice capacities are
// retained across uses; pointer-bearing fields are cleared on return to
// the pool so a pooled scratch never pins request data.
type scratch struct {
	req  LicenseRequest
	pb   licensePostBody
	args fillArgs
	key  []byte
	buf  []byte

	keys  [][]byte
	slots []batchSlot
	decs  []*cachedDecision
}

var scratchPool = sync.Pool{New: func() interface{} { return &scratch{} }}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

func putScratch(sc *scratch) {
	sc.req = LicenseRequest{}
	sc.pb = licensePostBody{}
	sc.args = fillArgs{}
	for i := range sc.slots {
		sc.slots[i].args = fillArgs{}
		sc.slots[i].dec = nil
		sc.slots[i].errMsg = ""
	}
	for i := range sc.decs {
		sc.decs[i] = nil
	}
	scratchPool.Put(sc)
}

// tierSkeleton is one row of the precomputed decision table: the
// wire-ready strings of a country tier's outcome, safeguard package, and
// rationale, derived once at init from safeguards.Rule so a cache fill
// renders a tier's strings by table lookup instead of re-deriving them.
// The safeguards slice is shared by every decision in the tier and is
// immutable by the same contract that makes cached decisions immutable.
type tierSkeleton struct {
	tier       string
	outcome    string
	safeguards []string
	rationale  string
}

var tierSkeletons = buildTierSkeletons()

func buildTierSkeletons() [safeguards.Restricted + 1]tierSkeleton {
	var out [safeguards.Restricted + 1]tierSkeleton
	for t := safeguards.SupplierState; t <= safeguards.Restricted; t++ {
		outcome, sgs, rationale := safeguards.Rule(t)
		row := tierSkeleton{tier: t.String(), outcome: outcome.String(), rationale: rationale}
		for _, sg := range sgs {
			row.safeguards = append(row.safeguards, sg.String())
		}
		out[t] = row
	}
	return out
}

// resolveLicense canonicalizes one request into fill arguments through
// the server's catalog index.
func (s *Server) resolveLicense(req *LicenseRequest, a *fillArgs) *statusError {
	return resolveLicenseArgs(s.systemsByName, req, a)
}

// resolveLicenseArgs canonicalizes one request into fill arguments:
// system lookup or explicit CTP, the threshold in force at the request's
// date, and the trimmed/lowercased destination. The error messages and
// their order are part of the API's observable behavior and match the
// original serial path exactly. It is the shared core of the server's
// resolution and the exported ResolveDecisionKey hook the gateway keys
// its routing on.
func resolveLicenseArgs(byName map[string]catalog.System, req *LicenseRequest, a *fillArgs) *statusError {
	a.sysName = ""
	switch {
	case req.System != "" && req.CTP != 0:
		return httpErr(http.StatusBadRequest, "give a system name or a ctp rating, not both")
	case req.System != "":
		sys, ok := lookupSystemIn(byName, req.System)
		if !ok {
			return httpErr(http.StatusNotFound, "unknown system %q", req.System)
		}
		a.rated, a.sysName = sys.CTP, sys.Name
	case req.CTP != 0:
		a.rated = units.Mtops(req.CTP)
	default:
		return httpErr(http.StatusBadRequest, "missing system name or ctp rating")
	}

	a.th = units.Mtops(req.Threshold)
	if a.th == 0 {
		date := req.Date
		if date == 0 {
			date = report.StudyDate
		}
		inForce, ok := regime.ThresholdInForce(date)
		if !ok {
			return httpErr(http.StatusUnprocessableEntity,
				"no control threshold in force at %.2f; give one explicitly", date)
		}
		a.th = inForce
	}

	a.dest = strings.ToLower(strings.TrimSpace(req.Destination))
	a.endUse = strings.TrimSpace(req.EndUse)
	return nil
}

// lookupSystem resolves a catalog system by exact name through the
// index built at New, falling back to catalog.Lookup's substring scan
// for partial names. The index and the scan's exact-match phase agree by
// construction, so this only short-circuits, never reroutes.
func (s *Server) lookupSystem(name string) (catalog.System, bool) {
	return lookupSystemIn(s.systemsByName, name)
}

func lookupSystemIn(byName map[string]catalog.System, name string) (catalog.System, bool) {
	if sys, ok := byName[name]; ok {
		return sys, true
	}
	return catalog.Lookup(name)
}

// appendDecisionKey renders the canonical decision cache key
// (system, rated CTP, destination, end use, threshold) into dst.
func appendDecisionKey(dst []byte, a *fillArgs) []byte {
	dst = append(dst, a.sysName...)
	dst = append(dst, keySep)
	dst = appendCanonicalFloat(dst, float64(a.rated))
	dst = append(dst, keySep)
	dst = append(dst, a.dest...)
	dst = append(dst, keySep)
	dst = append(dst, a.endUse...)
	dst = append(dst, keySep)
	dst = appendCanonicalFloat(dst, float64(a.th))
	return dst
}

// buildDecision evaluates one resolved request against the safeguards
// regime and shapes the wire response, sharing the tier's precomputed
// outcome strings and safeguard slice from the decision table.
func buildDecision(a *fillArgs) (*LicenseResponse, *statusError) {
	dec, err := safeguards.Evaluate(safeguards.License{
		Destination: a.dest, CTP: a.rated, EndUse: a.endUse,
	}, a.th)
	if err != nil {
		return nil, httpErr(http.StatusBadRequest, "%v", err)
	}
	resp := &LicenseResponse{
		System:         a.sysName,
		Destination:    a.dest,
		EndUse:         a.endUse,
		CTPMtops:       float64(a.rated),
		ThresholdMtops: float64(a.th),
		Outcome:        dec.Outcome.String(),
		Rationale:      dec.Rationale,
	}
	if int(dec.Tier) >= 0 && int(dec.Tier) < len(tierSkeletons) {
		row := &tierSkeletons[dec.Tier]
		resp.Tier = row.tier
		if len(dec.Safeguards) > 0 {
			resp.Safeguards = row.safeguards
		}
	} else {
		resp.Tier = dec.Tier.String()
		for _, sg := range dec.Safeguards {
			resp.Safeguards = append(resp.Safeguards, sg.String())
		}
	}
	return resp, nil
}

// encodeCached renders a response to its cached wire form: the exact
// bytes writeJSON would produce (trailing newline included) plus the
// preformatted Content-Length value. The hand-rolled encoder produces
// bytes identical to encoding/json — a property the differential fuzz
// test enforces — and the stdlib remains as the fallback for inputs the
// fast path declines.
func encodeCached(resp *LicenseResponse) (*cachedDecision, error) {
	body, ok := appendLicenseResponse(nil, resp)
	if !ok {
		var err error
		body, err = json.Marshal(resp)
		if err != nil {
			return nil, err
		}
	}
	body = append(body, '\n')
	return &cachedDecision{
		resp: resp,
		body: body,
		clen: []string{strconv.Itoa(len(body))},
		hash: bodyHash(body),
	}, nil
}

// evalDecision computes and encodes one decision without touching the
// cache; the degraded (poisoned-cache) path uses it directly.
func (s *Server) evalDecision(ctx context.Context, a *fillArgs) (*cachedDecision, *statusError) {
	eval := obs.Child(ctx, "safeguards.evaluate")
	resp, herr := buildDecision(a)
	eval.End()
	if herr != nil {
		return nil, herr
	}
	d, err := encodeCached(resp)
	if err != nil {
		return nil, httpErr(http.StatusInternalServerError, "response encoding failed")
	}
	return d, nil
}

// fillDecision is the coalescing leader's computation: evaluate, encode,
// and publish to the LRU. The Put happens before flightDo removes the
// in-flight call, so any request arriving after the fill completes finds
// the cache warm — there is no window where neither the flight map nor
// the cache answers.
func (s *Server) fillDecision(ctx context.Context, skey string, a *fillArgs) (*cachedDecision, error) {
	if s.flightBarrier != nil {
		s.flightBarrier(skey)
	}
	d, herr := s.evalDecision(ctx, a)
	if herr != nil {
		return nil, herr
	}
	s.decisions.Put(skey, d)
	// The decision is committed: write it through to the audit log. This
	// sits on the cold path only — warm hits never reach fillDecision —
	// so the log's latency prices cache fills, not the zero-alloc hot
	// path.
	s.walCommit(ctx, skey, a, d)
	return d, nil
}
