package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestCoalescedFillsAreByteIdentical drives N concurrent requests for the
// same cold decision key through the full handler stack while the
// flightBarrier test hook holds the leader between winning the key and
// computing. Exactly one request must evaluate (the leader, X-Cache:
// miss); the other N-1 must coalesce (X-Cache: hit) and return bodies
// byte-identical to the leader's — the hit≡cold contract extended to
// coalesced waiters.
func TestCoalescedFillsAreByteIdentical(t *testing.T) {
	const n = 8
	s := newTestServer(t)
	release := make(chan struct{})
	s.flightBarrier = func(key string) { <-release }
	h := s.Handler()

	var wg sync.WaitGroup
	recs := make([]*httptest.ResponseRecorder, n)
	for i := range recs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest("GET", "/v1/license?ctp=21125&dest=india&endUse=coalesce", nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			recs[i] = rec
		}(i)
	}

	// Wait for the leader to reach the barrier and every other request to
	// register as a coalesced waiter, then release the fill.
	deadline := time.Now().Add(5 * time.Second)
	for s.met.flightWaiters.Value() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters = %d after 5s, want %d", s.met.flightWaiters.Value(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := s.met.flightLeaders.Value(); got != 1 {
		t.Errorf("leader fills = %d, want 1", got)
	}
	if got := s.met.flightWaiters.Value(); got != n-1 {
		t.Errorf("coalesced waits = %d, want %d", got, n-1)
	}
	var hits, misses int
	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		switch rec.Header().Get("X-Cache") {
		case "hit":
			hits++
		case "miss":
			misses++
		default:
			t.Errorf("request %d: X-Cache = %q", i, rec.Header().Get("X-Cache"))
		}
		if !bytes.Equal(rec.Body.Bytes(), recs[0].Body.Bytes()) {
			t.Errorf("request %d body differs from request 0", i)
		}
	}
	if misses != 1 || hits != n-1 {
		t.Errorf("X-Cache split = %d miss / %d hit, want 1 / %d", misses, hits, n-1)
	}

	// The decision is now cached: a fresh request is a plain cache hit
	// with the same bytes and no new flight activity.
	rec := do(t, h, "GET", "/v1/license?ctp=21125&dest=india&endUse=coalesce", "")
	if rec.Header().Get("X-Cache") != "hit" {
		t.Errorf("post-coalesce request: X-Cache = %q, want hit", rec.Header().Get("X-Cache"))
	}
	if !bytes.Equal(rec.Body.Bytes(), recs[0].Body.Bytes()) {
		t.Error("post-coalesce body differs from coalesced bodies")
	}
	if got := s.met.flightLeaders.Value(); got != 1 {
		t.Errorf("leader fills after warm hit = %d, want 1", got)
	}
}

// TestCoalescedErrorNotCached holds a leader whose fill fails (unknown
// threshold date), verifies every waiter receives the same error status,
// and confirms the failure is not cached: errors propagate to the
// coalesced cohort but never poison the decision cache.
func TestCoalescedErrorNotCached(t *testing.T) {
	const n = 4
	s := newTestServer(t)
	release := make(chan struct{})
	s.flightBarrier = func(key string) { <-release }
	h := s.Handler()

	// A negative CTP resolves cleanly (it is a present rating) but fails
	// inside the fill when safeguards evaluation rejects the non-positive
	// value — the error path that must reach every coalesced waiter.
	target := "/v1/license?ctp=-5&dest=india&endUse=err"

	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([][]byte, n)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest("GET", target, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			codes[i] = rec.Code
			bodies[i] = rec.Body.Bytes()
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.met.flightWaiters.Value()+s.met.flightLeaders.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no flight activity after 5s")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i, code := range codes {
		if code != codes[0] {
			t.Errorf("request %d: status %d, want %d (same as leader)", i, code, codes[0])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d error body differs", i)
		}
	}
	if codes[0] == http.StatusOK {
		// The chosen request shape must actually fail; if the regime
		// answers it, the test is vacuous.
		t.Fatalf("expected an error response, got 200: %s", bodies[0])
	}
	if got := s.decisions.Len(); got != 0 {
		t.Errorf("decision cache holds %d entries after failed fills, want 0", got)
	}
}
