package serve

import (
	"net/http"

	"repro/internal/obs"
	"repro/internal/slo"
	"repro/internal/wal"
)

// The SLO integration: a passive burn-rate engine over the per-route
// instruments the middleware already maintains. Nothing here runs on its
// own schedule — the engine evaluates when something reads it (/v1/slo,
// /metrics, /v1/metrics), at the server's injected clock, so the same
// traffic under the same fake clock yields the same verdicts on every
// run. State transitions observed during an evaluation fan out to the
// watch stream (kind "slo") and pin the flight recorder's recent
// captures, so the requests that burned the budget are preserved next to
// the verdict they caused.

// initSLO mounts the burn-rate engine: one judged route per active
// objective, each sourced from the route's status-class and slow
// counters, plus the read-at-scrape slo_* gauges. Called from New after
// newServerMetrics, only when the profile is active.
func (s *Server) initSLO() {
	s.slo = slo.New(s.cfg.SLOSampleEvery, s.onSLOTransition)
	for _, route := range obsRoutes {
		if selfObserved(route) {
			continue
		}
		obj := s.cfg.SLO.For(route)
		ri, ok := s.met.routes[route]
		if !ok {
			continue
		}
		s.slo.Add(route, slo.Objective{
			Availability: obj.Availability,
			Latency:      obj.Latency,
			PageBurn:     obj.PageBurn,
			TicketBurn:   obj.TicketBurn,
		}, routeTotals(ri))
	}
	s.registerSLOMetrics()
}

// routeTotals builds one route's Totals source: total answered requests
// across the status classes, server errors, and requests over the
// latency objective. Counters are monotone, which is all the engine
// needs.
func routeTotals(ri *routeInstruments) slo.Source {
	return func() slo.Totals {
		var t slo.Totals
		for _, c := range ri.classes {
			t.Total += c.Value()
		}
		t.Errors = ri.classes[3].Value() // 5xx
		if ri.slow != nil {
			t.Slow = ri.slow.Value()
		}
		return t
	}
}

// registerSLOMetrics exposes the engine's cached verdicts as
// read-at-scrape gauges. Registered only when an SLO profile is mounted,
// so an unjudged daemon's exposition shape is unchanged; under a mounted
// profile the gauges read the evaluation the scrape itself just ran, so
// idle scrapes stay byte-identical (zero traffic means zero burn,
// whatever the clock says).
func (s *Server) registerSLOMetrics() {
	reg := s.met.reg
	for _, re := range s.slo.Routes() {
		route := re.Route
		l := obs.L("route", route)
		for _, se := range re.Signals {
			signal := se.Signal
			sl := obs.L("signal", signal)
			for _, w := range slo.Windows {
				window := w.Name
				reg.Func("slo_burn_rate", "error-budget burn rate, by route, signal, and window", obs.KindGauge,
					func() float64 { return s.slo.LastBurn(route, signal, window) },
					l, sl, obs.L("window", window))
			}
			reg.Func("slo_budget_remaining", "fraction of the shortest window's error budget left", obs.KindGauge,
				func() float64 { return s.slo.LastBudget(route, signal) }, l, sl)
			reg.Func("slo_state", "burn-rate severity: 0 ok, 1 warn, 2 page", obs.KindGauge,
				func() float64 { return s.slo.LastState(route, signal) }, l, sl)
		}
	}
}

// onSLOTransition handles one state change observed during an
// evaluation: it is published on the watch stream (when a decision log
// is mounted) and pins the flight recorder's most recent captures, so
// the requests that moved the burn rate are frozen alongside the
// verdict.
func (s *Server) onSLOTransition(t slo.Transition) {
	if s.wal != nil {
		s.wal.Events().Publish(wal.Event{
			Kind:   wal.EventSLO,
			Route:  t.Route,
			Detail: t.Signal + " " + t.From + "->" + t.To,
		})
	}
	if s.flightrec != nil {
		s.flightrec.Pin("slo:" + t.String())
	}
}

// sloEval runs one read-at-scrape evaluation at the server's clock. The
// metrics handlers call it before rendering so the slo_* gauges reflect
// the scrape instant, and /v1/slo serves the returned evaluation
// directly. A nil engine is a no-op.
func (s *Server) sloEval() slo.Evaluation {
	if s.slo == nil {
		return slo.Evaluation{}
	}
	return s.slo.Eval(s.clock())
}

// handleSLO serves the burn-rate verdicts for every judged route. The
// endpoint exists only when an SLO profile is mounted (404 otherwise).
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if s.slo == nil {
		writeError(w, http.StatusNotFound, "no SLO profile mounted; start the daemon with -slo")
		return
	}
	writeJSON(w, http.StatusOK, SLOResponse{
		Profile:    s.cfg.SLO.String(),
		Evaluation: s.sloEval(),
	})
}

// handleFlightRec dumps the flight recorder: the live capture ring
// newest-first plus every pinned anomaly group oldest-first. 404 when
// the recorder is disabled (Config.FlightCapacity < 0).
func (s *Server) handleFlightRec(w http.ResponseWriter, r *http.Request) {
	if s.flightrec == nil {
		writeError(w, http.StatusNotFound, "flight recorder disabled")
		return
	}
	caps, pins := s.flightrec.Snapshot()
	writeJSON(w, http.StatusOK, FlightRecResponse{
		Count:    len(caps),
		Captures: caps,
		Pins:     pins,
	})
}
