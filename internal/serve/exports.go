package serve

// Exported request-shape hooks for the routing gateway (internal/gateway).
//
// The gateway routes by the same canonical decision key the LRU,
// singleflight group, and WAL use, so a key's owner shard is stable and
// every layer of the system agrees on identity. These hooks expose just
// enough of the server's parsing and resolution machinery to compute
// that key outside a Server instance — the logic is shared with the
// request path, not duplicated, so the two can never drift.

import (
	"bytes"
	"encoding/json"
	"sync"

	"repro/internal/catalog"
)

// exportIndex is the package-level catalog index for key resolution
// outside a Server; built once on first use, identical by construction
// to the index every Server builds at New.
var (
	exportIndexOnce sync.Once
	exportIndex     map[string]catalog.System
)

func exportSystemIndex() map[string]catalog.System {
	exportIndexOnce.Do(func() {
		all := catalog.All()
		exportIndex = make(map[string]catalog.System, len(all))
		for _, sys := range all {
			exportIndex[sys.Name] = sys
		}
	})
	return exportIndex
}

// ResolveDecisionKey appends the canonical decision cache key for req to
// dst and reports whether the request resolved. A request that fails
// resolution (unknown system, missing fields, no threshold in force) has
// no canonical key; the caller should forward it unrouted so the backend
// produces the canonical error text.
func ResolveDecisionKey(dst []byte, req *LicenseRequest) ([]byte, bool) {
	var a fillArgs
	if herr := resolveLicenseArgs(exportSystemIndex(), req, &a); herr != nil {
		return dst, false
	}
	return appendDecisionKey(dst, &a), true
}

// DecodeLicenseQuery parses a /v1/license GET query string into a
// request, using the same parser as the server. ok is false for queries
// the server would reject.
func DecodeLicenseQuery(rawQuery string) (LicenseRequest, bool) {
	var req LicenseRequest
	if herr := parseLicenseQuery(rawQuery, &req); herr != nil {
		return LicenseRequest{}, false
	}
	return req, true
}

// DecodeLicenseBody parses a /v1/license POST body with the server's
// acceptance rules: the hand-rolled fast parser first, the strict stdlib
// decoder as fallback. It returns either the single request or the batch
// slice (isBatch true). ok is false for bodies the server would reject —
// malformed JSON, trailing data, or a body that sets both the single and
// batch forms.
func DecodeLicenseBody(body []byte) (single LicenseRequest, batch []LicenseRequest, isBatch, ok bool) {
	var pb licensePostBody
	if !parseLicensePostBody(body, &pb) {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		pb = licensePostBody{}
		if err := dec.Decode(&pb); err != nil || dec.More() {
			return LicenseRequest{}, nil, false, false
		}
	}
	if pb.Requests != nil {
		if pb.LicenseRequest != (LicenseRequest{}) {
			return LicenseRequest{}, nil, false, false
		}
		return LicenseRequest{}, pb.Requests, true, true
	}
	return pb.LicenseRequest, nil, false, true
}
