package serve

import (
	"context"
	"net/http"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/wal"
)

// degradedKey marks a request whose caches are poisoned for this arrival.
type degradedKey struct{}

// withDegraded marks the context degraded: read paths must treat every
// cache and memo as poisoned and recompute directly.
func withDegraded(ctx context.Context) context.Context {
	return context.WithValue(ctx, degradedKey{}, true)
}

// isDegraded reports whether this request must bypass caches.
func isDegraded(ctx context.Context) bool {
	v, _ := ctx.Value(degradedKey{}).(bool)
	return v
}

// faultInjectable reports whether a route is subject to fault injection.
// The observability endpoints are exempt (injection there would perturb
// the telemetry that reports on injection), and so is /v1/healthz: the
// health probe must stay reachable while everything else burns, and a
// readiness poll must not consume schedule slots out from under the
// routes whose fault sequence the chaos suite replays.
func faultInjectable(route string) bool {
	return !selfObserved(route) && route != "/v1/healthz"
}

// injectFault consumes the plan's next schedule slot for the route and
// applies the decision. It returns the request (re-contexted when the
// arrival is poisoned) and whether the request was fully handled here —
// true only for an injected error, which has already been written as a
// 503. The injected-fault headers make every perturbed response
// self-describing:
//
//	X-Fault-Injected: error|latency|poison   which fault fired
//	X-Degraded: cache-bypass                 served without caches
func (s *Server) injectFault(w http.ResponseWriter, r *http.Request, route string, span *obs.Span) (*http.Request, bool) {
	d := s.fault.Next(route)
	if d.Kind == fault.None {
		return r, false
	}
	w.Header().Set("X-Fault-Injected", d.Kind.String())
	span.SetAttr("fault", d.Kind.String())
	s.met.faultInjected(route, d.Kind)
	s.publishFaultEvent(route, d.Kind)
	switch d.Kind {
	case fault.Error:
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "injected fault"})
		return r, true
	case fault.Latency:
		s.sleep(d.Delay)
	case fault.Poison:
		w.Header().Set("X-Degraded", "cache-bypass")
		s.met.degradedResponse()
		r = r.WithContext(withDegraded(r.Context()))
	}
	return r, false
}

// publishFaultEvent surfaces an injected fault on the watch stream when
// a decision log is mounted. Poison faults publish as degraded — the
// observable consequence — and everything else under its fault kind.
func (s *Server) publishFaultEvent(route string, kind fault.Kind) {
	if s.wal == nil {
		return
	}
	ev := wal.Event{Kind: wal.EventFault, Route: route, Detail: kind.String()}
	if kind == fault.Poison {
		ev.Kind = wal.EventDegraded
		ev.Detail = "cache-bypass"
	}
	s.wal.Events().Publish(ev)
}

// FaultStats is the cumulative fault-injection accounting /v1/healthz
// reports while a fault plan is mounted.
type FaultStats struct {
	InjectedErrors  uint64 `json:"injectedErrors"`
	InjectedLatency uint64 `json:"injectedLatency"`
	PoisonedLookups uint64 `json:"poisonedLookups"`
	Degraded        uint64 `json:"degraded"`
}
