package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/slo"
	"repro/internal/wal"
)

// sloTestProfile is the profile most SLO tests mount: tight enough that
// a latency signal exists, loose enough that clean traffic never burns.
const sloTestProfile = "availability=0.99,latency=50ms"

// sloServer builds a test server with an SLO profile mounted, optionally
// over a fault plan.
func sloServer(t testing.TB, profile, faultSpec string) *Server {
	t.Helper()
	prof, err := slo.Parse(profile)
	if err != nil {
		t.Fatalf("slo.Parse(%q): %v", profile, err)
	}
	cfg := Config{Clock: testClock, SLO: prof}
	if faultSpec != "" {
		fp, err := fault.Parse(faultSpec)
		if err != nil {
			t.Fatalf("fault.Parse(%q): %v", faultSpec, err)
		}
		if cfg.Fault, err = fault.NewPlan(1, fp); err != nil {
			t.Fatalf("fault.NewPlan: %v", err)
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// TestSLOScrapeStableAndGated pins both halves of the exposition
// contract: with an SLO profile mounted the scrape carries the burn
// gauges and slow counters yet consecutive idle scrapes stay
// byte-identical (the SLO evaluation at scrape time is deterministic
// under the fake clock), and without a profile the exposition contains
// no SLO families and no exemplar suffixes at all.
func TestSLOScrapeStableAndGated(t *testing.T) {
	s := sloServer(t, sloTestProfile, "")
	h := s.Handler()

	do(t, h, "GET", "/v1/license?ctp=500&dest=india", "")
	do(t, h, "GET", "/v1/license?ctp=500&dest=india", "")
	do(t, h, "GET", "/v1/healthz", "")

	a := do(t, h, "GET", "/metrics", "")
	b := do(t, h, "GET", "/metrics", "")
	c := do(t, h, "GET", "/metrics", "")
	if a.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", a.Code)
	}
	if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) || !bytes.Equal(b.Body.Bytes(), c.Body.Bytes()) {
		t.Error("consecutive scrapes of an idle SLO-mounted daemon differ")
	}
	text := a.Body.String()
	for _, want := range []string{
		`slo_burn_rate{route="/v1/license",signal="availability",window="5m"} 0`,
		`slo_burn_rate{route="/v1/license",signal="latency",window="6h"} 0`,
		`slo_budget_remaining{route="/v1/license",signal="availability"} 1`,
		`slo_state{route="/v1/license",signal="availability"} 0`,
		`slo_slow_requests_total{route="/v1/license"} 0`,
		// The fake clock makes every request 0ns, so bucket le="1" of the
		// latency histogram carries the first request's exemplar.
		`# {trace_id="`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("SLO exposition missing %q", want)
		}
	}

	clean := do(t, newTestServer(t).Handler(), "GET", "/metrics", "")
	cleanText := clean.Body.String()
	if strings.Contains(cleanText, "slo_") {
		t.Error("exposition without an SLO profile carries slo_ families")
	}
	if strings.Contains(cleanText, "# {") {
		t.Error("exposition without an SLO profile carries exemplar suffixes")
	}
}

// TestSLOEndpointDeterministic: under the fake clock, two servers given
// the identical request sequence answer /v1/slo byte-identically, and
// repeated asks of an idle server do too. Without a profile the
// endpoint is 404.
func TestSLOEndpointDeterministic(t *testing.T) {
	drive := func(h http.Handler) string {
		do(t, h, "GET", "/v1/license?ctp=21125&dest=india", "")
		do(t, h, "GET", "/v1/license?ctp=500&dest=france", "")
		do(t, h, "GET", "/v1/healthz", "")
		rec := do(t, h, "GET", "/v1/slo", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("/v1/slo: %d %s", rec.Code, rec.Body.String())
		}
		return rec.Body.String()
	}
	runA := drive(sloServer(t, sloTestProfile, "").Handler())
	runB := drive(sloServer(t, sloTestProfile, "").Handler())
	if runA != runB {
		t.Errorf("/v1/slo diverged across identical runs:\nA %s\nB %s", runA, runB)
	}

	s := sloServer(t, sloTestProfile, "")
	first := do(t, s.Handler(), "GET", "/v1/slo", "").Body.String()
	second := do(t, s.Handler(), "GET", "/v1/slo", "").Body.String()
	if first != second {
		t.Errorf("idle /v1/slo not stable:\nfirst  %s\nsecond %s", first, second)
	}

	var resp SLOResponse
	if err := json.Unmarshal([]byte(runA), &resp); err != nil {
		t.Fatalf("decode /v1/slo: %v", err)
	}
	if resp.Profile != sloTestProfile {
		t.Errorf("profile = %q, want %q", resp.Profile, sloTestProfile)
	}
	if len(resp.Routes) == 0 {
		t.Fatal("no judged routes in /v1/slo")
	}

	if rec := do(t, newTestServer(t).Handler(), "GET", "/v1/slo", ""); rec.Code != http.StatusNotFound {
		t.Errorf("/v1/slo without a profile: %d, want 404", rec.Code)
	}
}

// TestSLOBurnUnderFaultsPages: with every request answered by an
// injected 503, the availability signal burns past the page threshold
// in every window and /v1/slo says so.
func TestSLOBurnUnderFaultsPages(t *testing.T) {
	s := sloServer(t, "availability=0.99", "error=1")
	h := s.Handler()
	for i := 0; i < 8; i++ {
		if rec := do(t, h, "GET", "/v1/license?ctp=500&dest=india", ""); rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("faulted request %d: %d, want 503", i, rec.Code)
		}
	}
	rec := do(t, h, "GET", "/v1/slo", "")
	var resp SLOResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode /v1/slo: %v", err)
	}
	var found bool
	for _, r := range resp.Routes {
		if r.Route != "/v1/license" {
			continue
		}
		for _, sig := range r.Signals {
			if sig.Signal != slo.SignalAvailability {
				continue
			}
			found = true
			if sig.State != slo.StatePage {
				t.Errorf("availability state = %q, want page", sig.State)
			}
			for _, w := range sig.Windows {
				if w.Burn < 14.4 {
					t.Errorf("window %s burn = %g, want >= 14.4", w.Window, w.Burn)
				}
			}
		}
	}
	if !found {
		t.Fatal("/v1/license availability signal missing from /v1/slo")
	}
}

// TestSLOTransitionStreamsOnWatch: the ok->page transition the faulted
// traffic causes is published as a kind=slo event on /v1/watch.
func TestSLOTransitionStreamsOnWatch(t *testing.T) {
	prof, err := slo.Parse("availability=0.99")
	if err != nil {
		t.Fatalf("slo.Parse: %v", err)
	}
	fp, err := fault.Parse("error=1")
	if err != nil {
		t.Fatalf("fault.Parse: %v", err)
	}
	plan, err := fault.NewPlan(1, fp)
	if err != nil {
		t.Fatalf("fault.NewPlan: %v", err)
	}
	s, l := newWALServer(t, t.TempDir(), func(c *Config) {
		c.SLO = prof
		c.Fault = plan
	})
	defer func() { _ = l.Close() }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	events := watchStream(t, ctx, ts.URL, "")

	for i := 0; i < 8; i++ {
		resp, err := http.Get(ts.URL + "/v1/license?ctp=500&dest=india")
		if err != nil {
			t.Fatalf("license: %v", err)
		}
		_ = resp.Body.Close()
	}
	// The engine evaluates at scrape time; the scrape is what notices
	// the burn and fires the transition.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	_ = resp.Body.Close()

	for {
		select {
		case ev := <-events:
			if ev.Kind != wal.EventSLO {
				continue // injected-fault events share the stream
			}
			if ev.Route != "/v1/license" {
				t.Fatalf("slo event route = %q, want /v1/license", ev.Route)
			}
			if want := "availability ok->page"; ev.Detail != want {
				t.Fatalf("slo event detail = %q, want %q", ev.Detail, want)
			}
			return
		case <-ctx.Done():
			t.Fatal("no slo event arrived on /v1/watch")
		}
	}
}

// TestFlightRecPinsFaultAndTraceResolves: an injected 503 becomes a
// pinned capture whose trace ID resolves in /v1/traces, and disabling
// the recorder turns the endpoint into a 404.
func TestFlightRecPinsFaultAndTraceResolves(t *testing.T) {
	s := sloServer(t, sloTestProfile, "error=1")
	h := s.Handler()

	req := httptest.NewRequest("GET", "/v1/license?ctp=500&dest=india", nil)
	req.Header.Set("X-Request-Id", "pin-me")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("faulted request: %d, want 503", rec.Code)
	}

	fr := do(t, h, "GET", "/v1/flightrec", "")
	if fr.Code != http.StatusOK {
		t.Fatalf("/v1/flightrec: %d", fr.Code)
	}
	var dump FlightRecResponse
	if err := json.Unmarshal(fr.Body.Bytes(), &dump); err != nil {
		t.Fatalf("decode /v1/flightrec: %v", err)
	}
	if len(dump.Pins) == 0 {
		t.Fatal("injected 503 produced no pinned group")
	}
	var pinned string
	for _, p := range dump.Pins {
		if !strings.HasPrefix(p.Trigger, "request:") {
			continue
		}
		for _, c := range p.Captures {
			if c.TraceID == "pin-me" {
				pinned = c.TraceID
				if c.Status != http.StatusServiceUnavailable {
					t.Errorf("pinned capture status = %d, want 503", c.Status)
				}
				if c.Fault == "" {
					t.Error("pinned capture missing the injected-fault marker")
				}
				if len(c.Anomalies) == 0 {
					t.Error("pinned capture carries no anomaly verdicts")
				}
			}
		}
	}
	if pinned == "" {
		t.Fatal("no pinned capture with the request's trace ID")
	}

	tr := do(t, h, "GET", "/v1/traces", "")
	var traces TracesResponse
	if err := json.Unmarshal(tr.Body.Bytes(), &traces); err != nil {
		t.Fatalf("decode /v1/traces: %v", err)
	}
	var resolved bool
	for _, trc := range traces.Traces {
		if trc.TraceID == pinned {
			resolved = true
		}
	}
	if !resolved {
		t.Errorf("pinned trace ID %q not present in /v1/traces", pinned)
	}

	off, err := New(Config{Clock: testClock, FlightCapacity: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if rec := do(t, off.Handler(), "GET", "/v1/flightrec", ""); rec.Code != http.StatusNotFound {
		t.Errorf("/v1/flightrec with the recorder disabled: %d, want 404", rec.Code)
	}
}

// TestFlightRecCapturesWALRegimeTransition: the commit that moves the
// decision log to a new threshold regime annotates its request's capture
// (WAL outcome, breaker note) and the regime-transition anomaly pins it.
func TestFlightRecCapturesWALRegimeTransition(t *testing.T) {
	s, l := newWALServer(t, t.TempDir(), nil)
	defer func() { _ = l.Close() }()
	h := s.Handler()

	do(t, h, "GET", "/v1/license?ctp=21125&dest=india&threshold=2000", "")
	do(t, h, "GET", "/v1/license?ctp=21125&dest=india&threshold=7000", "")

	var dump FlightRecResponse
	fr := do(t, h, "GET", "/v1/flightrec", "")
	if err := json.Unmarshal(fr.Body.Bytes(), &dump); err != nil {
		t.Fatalf("decode /v1/flightrec: %v", err)
	}
	if dump.Count < 2 {
		t.Fatalf("flight recorder holds %d captures, want >= 2", dump.Count)
	}
	var transition bool
	for _, p := range dump.Pins {
		if p.Trigger != "request:regime-transition" {
			continue
		}
		for _, c := range p.Captures {
			if c.Breaker == "regime 2000->7000" {
				transition = true
				if c.WAL != "committed" {
					t.Errorf("transition capture WAL = %q, want committed", c.WAL)
				}
				if c.Key == "" {
					t.Error("transition capture missing the canonical decision key")
				}
			}
		}
	}
	if !transition {
		t.Error("regime transition 2000->7000 was not pinned with its breaker note")
	}

	// The first commit merely establishes the regime: its capture carries
	// the WAL outcome but no anomaly.
	for _, c := range dump.Captures {
		if c.Route == "/v1/license" && c.Breaker == "" {
			if c.WAL != "committed" {
				t.Errorf("committed capture WAL = %q, want committed", c.WAL)
			}
		}
	}
}
