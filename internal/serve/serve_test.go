package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/report"
)

// testClock is a fixed instant (May 1995); the service must never need
// the wall clock when one is injected.
func testClock() time.Time { return time.Unix(800000000, 0) }

func newTestServer(t testing.TB) *Server {
	t.Helper()
	s, err := New(Config{Clock: testClock})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// do runs one request through the full middleware stack.
func do(t testing.TB, h http.Handler, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, target, nil)
	} else {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{MaxInFlight: -1},
		{RequestTimeout: -time.Second},
		{MaxBatch: -2},
	}
	for i, cfg := range cases {
		cfg.Clock = testClock
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config %+v", i, cfg)
		}
	}
	if _, err := New(Config{Clock: testClock}); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

func TestHealthz(t *testing.T) {
	h := newTestServer(t).Handler()
	rec := do(t, h, "GET", "/v1/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	var hr HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	if hr.Status != "ok" {
		t.Errorf("status = %q", hr.Status)
	}
	if hr.UptimeSeconds != 0 {
		t.Errorf("uptime with a fixed clock = %v, want 0", hr.UptimeSeconds)
	}
	if hr.Requests != 1 {
		t.Errorf("requests = %d, want 1", hr.Requests)
	}
	if rec.Header().Get("X-Request-Id") == "" {
		t.Error("no X-Request-Id header")
	}
}

func TestLicenseGet(t *testing.T) {
	h := newTestServer(t).Handler()

	rec := do(t, h, "GET", "/v1/license?ctp=21125&dest=india", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("license GET: %d: %s", rec.Code, rec.Body)
	}
	var lr LicenseResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &lr); err != nil {
		t.Fatal(err)
	}
	if lr.ThresholdMtops != 1500 {
		t.Errorf("default threshold = %v, want the 1994 threshold 1500", lr.ThresholdMtops)
	}
	if lr.Outcome != "approve with safeguards" || len(lr.Safeguards) != 5 {
		t.Errorf("india decision = %q with %d safeguards", lr.Outcome, len(lr.Safeguards))
	}

	// The threshold in force at an earlier date: 195 Mtops in 1992.
	rec = do(t, h, "GET", "/v1/license?ctp=500&dest=france&date=1992.5", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("dated license GET: %d", rec.Code)
	}
	lr = LicenseResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &lr); err != nil {
		t.Fatal(err)
	}
	if lr.ThresholdMtops != 195 {
		t.Errorf("1992 threshold-in-force = %v, want 195", lr.ThresholdMtops)
	}

	// Named system resolution.
	rec = do(t, h, "GET", "/v1/license?system=Cray+C916&dest=iran", "")
	lr = LicenseResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &lr); err != nil {
		t.Fatal(err)
	}
	if lr.System != "Cray C916" || lr.Outcome != "deny" {
		t.Errorf("C916 to iran = %q / %q", lr.System, lr.Outcome)
	}
}

func TestLicenseGetBadInputs(t *testing.T) {
	h := newTestServer(t).Handler()
	cases := []struct {
		target string
		code   int
	}{
		{"/v1/license?ctp=bogus&dest=india", http.StatusBadRequest},
		{"/v1/license?ctp=100&dest=india&date=soon", http.StatusBadRequest},
		{"/v1/license?dest=india", http.StatusBadRequest},                     // no system, no ctp
		{"/v1/license?ctp=100&system=cray&dest=india", http.StatusBadRequest}, // both
		{"/v1/license?system=no-such-machine&dest=india", http.StatusNotFound},
		{"/v1/license?ctp=100", http.StatusBadRequest},                                 // empty destination
		{"/v1/license?ctp=100&dest=india&date=1984.0", http.StatusUnprocessableEntity}, // pre-regime
		{"/v1/license?ctp=-5&dest=india", http.StatusBadRequest},                       // non-positive CTP
	}
	for _, c := range cases {
		rec := do(t, h, "GET", c.target, "")
		if rec.Code != c.code {
			t.Errorf("%s: code %d, want %d (%s)", c.target, rec.Code, c.code, rec.Body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body not JSON: %s", c.target, rec.Body)
		}
	}
}

func TestLicensePostSingleAndBatch(t *testing.T) {
	h := newTestServer(t).Handler()

	rec := do(t, h, "POST", "/v1/license", `{"system":"Cray C916","destination":"India","endUse":"weather modeling"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST single: %d: %s", rec.Code, rec.Body)
	}
	var lr LicenseResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &lr); err != nil {
		t.Fatal(err)
	}
	if lr.EndUse != "weather modeling" || lr.Destination != "india" {
		t.Errorf("echoed request = %+v", lr)
	}

	// CTP as a paper-notation string.
	rec = do(t, h, "POST", "/v1/license", `{"ctp":"4.5k","destination":"france"}`)
	lr = LicenseResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &lr); err != nil {
		t.Fatal(err)
	}
	if lr.CTPMtops != 4500 {
		t.Errorf(`ctp "4.5k" = %v, want 4500`, lr.CTPMtops)
	}

	// Batch: answered in order, bad items independent.
	rec = do(t, h, "POST", "/v1/license",
		`{"requests":[{"ctp":2000,"destination":"japan"},{"system":"nope","destination":"japan"},{"ctp":10,"destination":"iran"}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST batch: %d: %s", rec.Code, rec.Body)
	}
	var br BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Decisions) != 3 {
		t.Fatalf("batch answered %d items", len(br.Decisions))
	}
	if br.Decisions[0].Decision == nil || br.Decisions[0].Decision.Outcome != "supplier-state notification (30-day review)" {
		t.Errorf("batch[0] = %+v", br.Decisions[0])
	}
	if br.Decisions[1].Error == "" || br.Decisions[1].Decision != nil {
		t.Errorf("batch[1] should be an error item: %+v", br.Decisions[1])
	}
	if br.Decisions[2].Decision == nil || br.Decisions[2].Decision.Outcome != "no supercomputer license required" {
		t.Errorf("batch[2] = %+v", br.Decisions[2])
	}
}

func TestLicensePostBadInputs(t *testing.T) {
	h := newTestServer(t).Handler()
	cases := []struct {
		name string
		body string
		code int
	}{
		{"malformed JSON", `{"destination":`, http.StatusBadRequest},
		{"unknown field", `{"dest":"india","ctp":5}`, http.StatusBadRequest},
		{"trailing data", `{"ctp":5,"destination":"india"} garbage`, http.StatusBadRequest},
		{"single and batch", `{"ctp":5,"destination":"india","requests":[]}`, http.StatusBadRequest},
		{"unknown system", `{"system":"Imaginary-9000","destination":"india"}`, http.StatusNotFound},
		{"array not object", `[1,2,3]`, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec := do(t, h, "POST", "/v1/license", c.body)
		if rec.Code != c.code {
			t.Errorf("%s: code %d, want %d (%s)", c.name, rec.Code, c.code, rec.Body)
		}
	}
}

func TestLicenseBatchOversized(t *testing.T) {
	s, err := New(Config{Clock: testClock, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	items := make([]string, 5)
	for i := range items {
		items[i] = fmt.Sprintf(`{"ctp":%d,"destination":"japan"}`, 100+i)
	}
	body := `{"requests":[` + strings.Join(items, ",") + `]}`
	rec := do(t, s.Handler(), "POST", "/v1/license", body)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: %d, want 413 (%s)", rec.Code, rec.Body)
	}
}

func TestLicenseCacheHitIsByteIdentical(t *testing.T) {
	h := newTestServer(t).Handler()
	const target = "/v1/license?ctp=21125&dest=india&endUse=modeling"
	cold := do(t, h, "GET", target, "")
	if cold.Code != http.StatusOK || cold.Header().Get("X-Cache") != "miss" {
		t.Fatalf("cold: %d, X-Cache=%q", cold.Code, cold.Header().Get("X-Cache"))
	}
	warm := do(t, h, "GET", target, "")
	if warm.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second request not a cache hit")
	}
	if cold.Body.String() != warm.Body.String() {
		t.Errorf("cache hit differs from cold decision:\ncold: %s\nwarm: %s", cold.Body, warm.Body)
	}
	// The POST path must share the cache with GET (same canonical key).
	post := do(t, h, "POST", "/v1/license", `{"ctp":21125,"destination":" India ","endUse":"modeling"}`)
	if post.Header().Get("X-Cache") != "hit" {
		t.Errorf("canonicalized POST did not hit the GET-warmed cache")
	}
	if post.Body.String() != cold.Body.String() {
		t.Errorf("POST answer differs from GET answer for the canonically equal request")
	}
}

func TestCatalogQueries(t *testing.T) {
	h := newTestServer(t).Handler()

	rec := do(t, h, "GET", "/v1/catalog", "")
	var all CatalogResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &all); err != nil {
		t.Fatal(err)
	}
	if all.Count != len(catalog.All()) {
		t.Errorf("unfiltered count = %d, want %d", all.Count, len(catalog.All()))
	}

	rec = do(t, h, "GET", "/v1/catalog?origin=russia", "")
	var ru CatalogResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ru); err != nil {
		t.Fatal(err)
	}
	if ru.Count != len(catalog.ByOrigin(catalog.Russia)) {
		t.Errorf("russia count = %d, want %d", ru.Count, len(catalog.ByOrigin(catalog.Russia)))
	}
	for _, sys := range ru.Systems {
		if sys.Origin != "Russia" {
			t.Errorf("origin filter leaked %s (%s)", sys.Name, sys.Origin)
		}
	}

	rec = do(t, h, "GET", "/v1/catalog?indigenous=true", "")
	var ind CatalogResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ind); err != nil {
		t.Fatal(err)
	}
	if ind.Count != len(catalog.Indigenous()) {
		t.Errorf("indigenous count = %d, want %d", ind.Count, len(catalog.Indigenous()))
	}

	rec = do(t, h, "GET", "/v1/catalog?minctp=10000&year=1995", "")
	var big CatalogResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &big); err != nil {
		t.Fatal(err)
	}
	for _, sys := range big.Systems {
		if sys.CTPMtops < 10000 || sys.Year > 1995 {
			t.Errorf("filter leaked %s (%v Mtops, %d)", sys.Name, sys.CTPMtops, sys.Year)
		}
	}

	if rec := do(t, h, "GET", "/v1/catalog?origin=atlantis", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown origin: %d, want 400", rec.Code)
	}
	if rec := do(t, h, "GET", "/v1/catalog?minctp=many", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("bad minctp: %d, want 400", rec.Code)
	}
}

func TestAppsQueries(t *testing.T) {
	h := newTestServer(t).Handler()

	rec := do(t, h, "GET", "/v1/apps?mission=cryptology", "")
	var crypt AppsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &crypt); err != nil {
		t.Fatal(err)
	}
	if crypt.Count == 0 {
		t.Fatal("no cryptology applications")
	}
	for _, a := range crypt.Applications {
		if a.Mission != "cryptology" {
			t.Errorf("mission filter leaked %s (%s)", a.Name, a.Mission)
		}
	}

	rec = do(t, h, "GET", "/v1/apps?deployed=true&min=1000", "")
	var dep AppsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &dep); err != nil {
		t.Fatal(err)
	}
	for _, a := range dep.Applications {
		if !a.Deployed || a.MinMtops < 1000 {
			t.Errorf("deployed/min filter leaked %s", a.Name)
		}
	}

	if rec := do(t, h, "GET", "/v1/apps?deployed=maybe", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("bad deployed: %d, want 400", rec.Code)
	}
	if rec := do(t, h, "GET", "/v1/apps?min=lots", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("bad min: %d, want 400", rec.Code)
	}
}

func TestThresholdEndpoint(t *testing.T) {
	h := newTestServer(t).Handler()

	rec := do(t, h, "GET", "/v1/threshold", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("threshold: %d: %s", rec.Code, rec.Body)
	}
	var tr ThresholdResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	want, err := report.StudySnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Date != report.StudyDate || tr.LowerBoundMtops != float64(want.LowerBound) {
		t.Errorf("study snapshot mismatch: date %v bound %v", tr.Date, tr.LowerBoundMtops)
	}
	if len(tr.Premises) != 3 {
		t.Errorf("premises = %d, want 3", len(tr.Premises))
	}
	if tr.Projection != nil {
		t.Error("projection included without project=true")
	}

	rec = do(t, h, "GET", "/v1/threshold?project=true", "")
	tr = ThresholdResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Projection == nil || tr.Projection.AnnualFactor <= 1 {
		t.Errorf("projection = %+v", tr.Projection)
	}

	// A different (valid) date computes and caches.
	rec = do(t, h, "GET", "/v1/threshold?date=1997.5", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("dated threshold: %d: %s", rec.Code, rec.Body)
	}

	if rec := do(t, h, "GET", "/v1/threshold?date=soon", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("bad date syntax: %d, want 400", rec.Code)
	}
	if rec := do(t, h, "GET", "/v1/threshold?date=1975", ""); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("out-of-range date: %d, want 422 (%s)", rec.Code, rec.Body)
	}
}

func TestUnknownRouteAndMethod(t *testing.T) {
	h := newTestServer(t).Handler()
	if rec := do(t, h, "GET", "/v1/nope", ""); rec.Code != http.StatusNotFound {
		t.Errorf("unknown route: %d", rec.Code)
	}
	if rec := do(t, h, "DELETE", "/v1/license", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("bad method: %d", rec.Code)
	}
}

// TestConcurrentMixedRequestsRace is the issue's load gate: 64 concurrent
// goroutines issuing mixed queries under -race, with every cached license
// decision byte-identical to the cold decision captured beforehand.
func TestConcurrentMixedRequestsRace(t *testing.T) {
	h := newTestServer(t).Handler()

	licenseTargets := []string{
		"/v1/license?ctp=21125&dest=india",
		"/v1/license?ctp=200&dest=japan",
		"/v1/license?system=Cray+C916&dest=iran",
		"/v1/license?ctp=4600&dest=sweden&threshold=1500",
		"/v1/license?ctp=50&dest=france&date=1992.5",
	}
	cold := make(map[string]string, len(licenseTargets))
	for _, target := range licenseTargets {
		rec := do(t, h, "GET", target, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("cold %s: %d", target, rec.Code)
		}
		cold[target] = rec.Body.String()
	}

	otherTargets := []string{
		"/v1/catalog?origin=us&minctp=1000",
		"/v1/apps?mission=nuclear",
		"/v1/threshold",
		"/v1/threshold?date=1996.5",
		"/v1/healthz",
	}

	const workers = 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if (w+i)%2 == 0 {
					target := licenseTargets[(w+i)%len(licenseTargets)]
					rec := do(t, h, "GET", target, "")
					if rec.Code != http.StatusOK {
						t.Errorf("worker %d: %s: %d", w, target, rec.Code)
						return
					}
					if got := rec.Body.String(); got != cold[target] {
						t.Errorf("worker %d: %s: cached decision differs from cold:\n%s\nvs\n%s",
							w, target, got, cold[target])
						return
					}
				} else {
					target := otherTargets[(w+i)%len(otherTargets)]
					if rec := do(t, h, "GET", target, ""); rec.Code != http.StatusOK {
						t.Errorf("worker %d: %s: %d", w, target, rec.Code)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestServeGracefulShutdown drives a real listener: requests succeed,
// cancellation drains, and the accept loop exits nil.
func TestServeGracefulShutdown(t *testing.T) {
	s := newTestServer(t)
	ln, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/v1/healthz")
	if err != nil {
		cancel()
		t.Fatalf("live request: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Errorf("closing body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz over TCP: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not drain within 10s")
	}

	if _, err := http.Get("http://" + ln.Addr().String() + "/v1/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}
