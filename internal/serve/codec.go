package serve

import (
	"math"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"

	"repro/internal/units"
)

// This file is the license hot-path codec: hand-rolled, append-based JSON
// encoding and strict decoding for the /v1/license request and response
// shapes. The encoders are byte-identical to the encoding/json output
// they replace (proven by the differential fuzz tests in codec_test.go);
// the decoders accept exactly the canonical form and report !ok on any
// deviation, at which point the caller falls back to the stdlib path —
// so every accepted body parses identically to encoding/json, and every
// rejected body produces encoding/json's exact error text.

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal exactly as
// encoding/json renders it: HTML-escaping on (<, >, & become \u00XX),
// \b, \f, \n, \r, \t as two-byte escapes, other control bytes as
// \u00XX, invalid UTF-8 replaced with the \ufffd escape, and the
// U+2028/U+2029 line separators escaped as six-byte sequences.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= ' ' && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Control bytes without a two-byte escape, plus <, >, &.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == ' ' || c == ' ' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONFloat appends f exactly as encoding/json's float64 encoder
// does: shortest representation, 'f' format unless the magnitude calls
// for 'e', and the exponent's leading zero trimmed. Non-finite values
// report ok == false (encoding/json returns an error for them).
func appendJSONFloat(dst []byte, f float64) ([]byte, bool) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return dst, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, true
}

// appendCanonicalFloat appends the canonical cache-key rendering of v —
// the append-style canonicalFloat, for key construction without the
// per-call string. It is also CTPValue's wire format ('g', shortest).
func appendCanonicalFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// appendLicenseResponse appends r exactly as json.Marshal renders it
// (no trailing newline). ok is false only for non-finite floats, which
// the decision path never produces.
func appendLicenseResponse(dst []byte, r *LicenseResponse) ([]byte, bool) {
	var ok bool
	dst = append(dst, '{')
	if r.System != "" {
		dst = append(dst, `"system":`...)
		dst = appendJSONString(dst, r.System)
		dst = append(dst, ',')
	}
	dst = append(dst, `"destination":`...)
	dst = appendJSONString(dst, r.Destination)
	if r.EndUse != "" {
		dst = append(dst, `,"endUse":`...)
		dst = appendJSONString(dst, r.EndUse)
	}
	dst = append(dst, `,"tier":`...)
	dst = appendJSONString(dst, r.Tier)
	dst = append(dst, `,"ctpMtops":`...)
	if dst, ok = appendJSONFloat(dst, r.CTPMtops); !ok {
		return dst, false
	}
	dst = append(dst, `,"thresholdMtops":`...)
	if dst, ok = appendJSONFloat(dst, r.ThresholdMtops); !ok {
		return dst, false
	}
	dst = append(dst, `,"outcome":`...)
	dst = appendJSONString(dst, r.Outcome)
	if len(r.Safeguards) > 0 {
		dst = append(dst, `,"safeguards":[`...)
		for i, sg := range r.Safeguards {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, sg)
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"rationale":`...)
	dst = appendJSONString(dst, r.Rationale)
	return append(dst, '}'), true
}

// AppendLicenseRequest appends r exactly as json.Marshal renders it. ok
// is false for non-finite floats (where json.Marshal errors instead).
func AppendLicenseRequest(dst []byte, r *LicenseRequest) ([]byte, bool) {
	var ok bool
	dst = append(dst, '{')
	first := true
	comma := func(dst []byte) []byte {
		if first {
			first = false
			return dst
		}
		return append(dst, ',')
	}
	if r.System != "" {
		dst = comma(dst)
		dst = append(dst, `"system":`...)
		dst = appendJSONString(dst, r.System)
	}
	if r.CTP != 0 {
		v := float64(r.CTP)
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return dst, false
		}
		dst = comma(dst)
		dst = append(dst, `"ctp":`...)
		dst = appendCanonicalFloat(dst, v)
	}
	dst = comma(dst)
	dst = append(dst, `"destination":`...)
	dst = appendJSONString(dst, r.Destination)
	if r.EndUse != "" {
		dst = append(dst, `,"endUse":`...)
		dst = appendJSONString(dst, r.EndUse)
	}
	if r.Threshold != 0 {
		v := float64(r.Threshold)
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return dst, false
		}
		dst = append(dst, `,"threshold":`...)
		dst = appendCanonicalFloat(dst, v)
	}
	if r.Date != 0 {
		dst = append(dst, `,"date":`...)
		if dst, ok = appendJSONFloat(dst, r.Date); !ok {
			return dst, false
		}
	}
	return append(dst, '}'), true
}

// AppendBatchRequest appends BatchRequest{Requests: reqs} exactly as
// json.Marshal renders it.
func AppendBatchRequest(dst []byte, reqs []LicenseRequest) ([]byte, bool) {
	dst = append(dst, `{"requests":`...)
	if reqs == nil {
		dst = append(dst, `null`...)
		return append(dst, '}'), true
	}
	dst = append(dst, '[')
	var ok bool
	for i := range reqs {
		if i > 0 {
			dst = append(dst, ',')
		}
		if dst, ok = AppendLicenseRequest(dst, &reqs[i]); !ok {
			return dst, false
		}
	}
	dst = append(dst, ']')
	return append(dst, '}'), true
}

// ---- strict decoding -----------------------------------------------------

// jsonCursor is a strict single-pass JSON reader. Every read method
// reports !ok on any input the fast path does not handle — malformed
// JSON, but also valid JSON the canonical encoders never produce
// (escaped keys, case-insensitive field names, unknown fields). The
// caller treats !ok as "re-parse with encoding/json".
type jsonCursor struct {
	data []byte
	pos  int
}

func (c *jsonCursor) skipWS() {
	for c.pos < len(c.data) {
		switch c.data[c.pos] {
		case ' ', '\t', '\n', '\r':
			c.pos++
		default:
			return
		}
	}
}

// lit consumes the exact literal s.
func (c *jsonCursor) lit(s string) bool {
	if len(c.data)-c.pos < len(s) || string(c.data[c.pos:c.pos+len(s)]) != s {
		return false
	}
	c.pos += len(s)
	return true
}

func (c *jsonCursor) byteIs(b byte) bool {
	return c.pos < len(c.data) && c.data[c.pos] == b
}

// readKey reads an object key as raw bytes. Keys with escapes, control
// bytes, or non-ASCII report !ok — the canonical encoders only emit
// plain ASCII keys, and anything else must take the stdlib path so
// case-insensitive matching and DisallowUnknownFields behave exactly.
func (c *jsonCursor) readKey() ([]byte, bool) {
	if !c.byteIs('"') {
		return nil, false
	}
	start := c.pos + 1
	for i := start; i < len(c.data); i++ {
		switch b := c.data[i]; {
		case b == '"':
			c.pos = i + 1
			return c.data[start:i], true
		case b == '\\' || b < ' ' || b >= utf8.RuneSelf:
			return nil, false
		}
	}
	return nil, false
}

// readString reads a JSON string value with encoding/json's exact
// semantics: the escapes the scanner admits, surrogate-pair decoding,
// and invalid UTF-8 replaced rune-by-rune with U+FFFD.
func (c *jsonCursor) readString() (string, bool) {
	if !c.byteIs('"') {
		return "", false
	}
	start := c.pos + 1
	// Fast path: no escapes, no control bytes, valid UTF-8.
	i := start
	for i < len(c.data) {
		b := c.data[i]
		if b == '"' {
			c.pos = i + 1
			return string(c.data[start:i]), true
		}
		if b == '\\' || b < ' ' {
			break
		}
		if b < utf8.RuneSelf {
			i++
			continue
		}
		r, size := utf8.DecodeRune(c.data[i:])
		if r == utf8.RuneError && size == 1 {
			break
		}
		i += size
	}
	// Slow path: build the unquoted value byte-by-byte.
	buf := append([]byte(nil), c.data[start:i]...)
	for i < len(c.data) {
		switch b := c.data[i]; {
		case b == '"':
			c.pos = i + 1
			return string(buf), true
		case b < ' ':
			return "", false
		case b == '\\':
			i++
			if i >= len(c.data) {
				return "", false
			}
			switch c.data[i] {
			case '"', '\\', '/':
				buf = append(buf, c.data[i])
				i++
			case 'b':
				buf = append(buf, '\b')
				i++
			case 'f':
				buf = append(buf, '\f')
				i++
			case 'n':
				buf = append(buf, '\n')
				i++
			case 'r':
				buf = append(buf, '\r')
				i++
			case 't':
				buf = append(buf, '\t')
				i++
			case 'u':
				i--
				r := getu4(c.data[i:])
				if r < 0 {
					return "", false
				}
				i += 6
				if utf16.IsSurrogate(r) {
					r1 := getu4(c.data[i:])
					if dec := utf16.DecodeRune(r, r1); dec != unicode.ReplacementChar {
						i += 6
						buf = utf8.AppendRune(buf, dec)
						break
					}
					r = unicode.ReplacementChar
				}
				buf = utf8.AppendRune(buf, r)
			default:
				return "", false
			}
		case b < utf8.RuneSelf:
			buf = append(buf, b)
			i++
		default:
			r, size := utf8.DecodeRune(c.data[i:])
			i += size
			buf = utf8.AppendRune(buf, r)
		}
	}
	return "", false
}

// getu4 decodes \uXXXX at the start of s, returning -1 on malformed input.
func getu4(s []byte) rune {
	if len(s) < 6 || s[0] != '\\' || s[1] != 'u' {
		return -1
	}
	var r rune
	for _, b := range s[2:6] {
		var v byte
		switch {
		case '0' <= b && b <= '9':
			v = b - '0'
		case 'a' <= b && b <= 'f':
			v = b - 'a' + 10
		case 'A' <= b && b <= 'F':
			v = b - 'A' + 10
		default:
			return -1
		}
		r = r*16 + rune(v)
	}
	return r
}

// readNumber reads a JSON number with the scanner's exact grammar and
// converts it with strconv.ParseFloat; grammar violations and range
// errors report !ok.
func (c *jsonCursor) readNumber() (float64, bool) {
	start := c.pos
	i := c.pos
	if i < len(c.data) && c.data[i] == '-' {
		i++
	}
	switch {
	case i < len(c.data) && c.data[i] == '0':
		i++
	case i < len(c.data) && '1' <= c.data[i] && c.data[i] <= '9':
		for i < len(c.data) && '0' <= c.data[i] && c.data[i] <= '9' {
			i++
		}
	default:
		return 0, false
	}
	if i < len(c.data) && c.data[i] == '.' {
		i++
		if i >= len(c.data) || c.data[i] < '0' || c.data[i] > '9' {
			return 0, false
		}
		for i < len(c.data) && '0' <= c.data[i] && c.data[i] <= '9' {
			i++
		}
	}
	if i < len(c.data) && (c.data[i] == 'e' || c.data[i] == 'E') {
		i++
		if i < len(c.data) && (c.data[i] == '+' || c.data[i] == '-') {
			i++
		}
		if i >= len(c.data) || c.data[i] < '0' || c.data[i] > '9' {
			return 0, false
		}
		for i < len(c.data) && '0' <= c.data[i] && c.data[i] <= '9' {
			i++
		}
	}
	f, err := strconv.ParseFloat(string(c.data[start:i]), 64)
	if err != nil {
		return 0, false
	}
	c.pos = i
	return f, true
}

// readCTP reads a ctp/threshold value with CTPValue's semantics: a JSON
// number, or a ParseMtops-format string.
func (c *jsonCursor) readCTP() (CTPValue, bool) {
	if c.byteIs('"') {
		s, ok := c.readString()
		if !ok {
			return 0, false
		}
		m, err := units.ParseMtops(s)
		if err != nil {
			return 0, false
		}
		return CTPValue(m), true
	}
	f, ok := c.readNumber()
	return CTPValue(f), ok
}

// parseLicenseFields parses one request object's fields into req. When
// reqs is non-nil a "requests" key is admitted and stored through it
// (the batch shape of licensePostBody).
func (c *jsonCursor) parseLicenseFields(req *LicenseRequest, reqs *[]LicenseRequest) bool {
	if !c.byteIs('{') {
		return false
	}
	c.pos++
	c.skipWS()
	if c.byteIs('}') {
		c.pos++
		return true
	}
	for {
		c.skipWS()
		key, ok := c.readKey()
		if !ok {
			return false
		}
		c.skipWS()
		if !c.byteIs(':') {
			return false
		}
		c.pos++
		c.skipWS()
		switch string(key) {
		case "system", "destination", "endUse", "ctp", "threshold", "date":
		case "requests":
			if reqs == nil {
				return false
			}
		default:
			// Unknown field: rejected whatever the value, matching
			// DisallowUnknownFields on the fallback path.
			return false
		}
		if c.lit("null") {
			// encoding/json leaves the field untouched on null.
		} else {
			switch string(key) {
			case "system":
				if req.System, ok = c.readString(); !ok {
					return false
				}
			case "destination":
				if req.Destination, ok = c.readString(); !ok {
					return false
				}
			case "endUse":
				if req.EndUse, ok = c.readString(); !ok {
					return false
				}
			case "ctp":
				if req.CTP, ok = c.readCTP(); !ok {
					return false
				}
			case "threshold":
				if req.Threshold, ok = c.readCTP(); !ok {
					return false
				}
			case "date":
				if req.Date, ok = c.readNumber(); !ok {
					return false
				}
			case "requests":
				if reqs == nil || !c.parseRequestList(reqs) {
					return false
				}
			default:
				return false
			}
		}
		c.skipWS()
		if c.byteIs(',') {
			c.pos++
			continue
		}
		if c.byteIs('}') {
			c.pos++
			return true
		}
		return false
	}
}

// parseRequestList parses the "requests" array. A null element leaves its
// slot as the zero request, exactly as encoding/json does.
func (c *jsonCursor) parseRequestList(reqs *[]LicenseRequest) bool {
	if !c.byteIs('[') {
		return false
	}
	c.pos++
	out := []LicenseRequest{}
	c.skipWS()
	if c.byteIs(']') {
		c.pos++
		*reqs = out
		return true
	}
	for {
		c.skipWS()
		out = append(out, LicenseRequest{})
		if !c.lit("null") && !c.parseLicenseFields(&out[len(out)-1], nil) {
			return false
		}
		c.skipWS()
		if c.byteIs(',') {
			c.pos++
			continue
		}
		if c.byteIs(']') {
			c.pos++
			*reqs = out
			return true
		}
		return false
	}
}

// parseLicensePostBody is the fast path of handleLicensePost: it accepts
// exactly the canonical body shape and reports !ok for everything else,
// including trailing non-whitespace (the dec.More() check of the stdlib
// path). The differential fuzz test proves every accepted body decodes
// identically to encoding/json.
func parseLicensePostBody(data []byte, out *licensePostBody) bool {
	c := jsonCursor{data: data}
	c.skipWS()
	if !c.parseLicenseFields(&out.LicenseRequest, &out.Requests) {
		return false
	}
	c.skipWS()
	return c.pos == len(c.data)
}

// ---- response decoding (client side) -------------------------------------

// parseLicenseResponseFields parses one decision object.
func (c *jsonCursor) parseLicenseResponseFields(out *LicenseResponse) bool {
	if !c.byteIs('{') {
		return false
	}
	c.pos++
	c.skipWS()
	if c.byteIs('}') {
		c.pos++
		return true
	}
	for {
		c.skipWS()
		key, ok := c.readKey()
		if !ok {
			return false
		}
		c.skipWS()
		if !c.byteIs(':') {
			return false
		}
		c.pos++
		c.skipWS()
		if c.lit("null") {
			// Field untouched, as encoding/json leaves it.
		} else {
			switch string(key) {
			case "system":
				if out.System, ok = c.readString(); !ok {
					return false
				}
			case "destination":
				if out.Destination, ok = c.readString(); !ok {
					return false
				}
			case "endUse":
				if out.EndUse, ok = c.readString(); !ok {
					return false
				}
			case "tier":
				if out.Tier, ok = c.readString(); !ok {
					return false
				}
			case "ctpMtops":
				if out.CTPMtops, ok = c.readNumber(); !ok {
					return false
				}
			case "thresholdMtops":
				if out.ThresholdMtops, ok = c.readNumber(); !ok {
					return false
				}
			case "outcome":
				if out.Outcome, ok = c.readString(); !ok {
					return false
				}
			case "rationale":
				if out.Rationale, ok = c.readString(); !ok {
					return false
				}
			case "safeguards":
				if !c.byteIs('[') {
					return false
				}
				c.pos++
				sgs := []string{}
				c.skipWS()
				if c.byteIs(']') {
					c.pos++
					out.Safeguards = sgs
					break
				}
				for {
					c.skipWS()
					if c.lit("null") {
						sgs = append(sgs, "")
					} else {
						s, ok := c.readString()
						if !ok {
							return false
						}
						sgs = append(sgs, s)
					}
					c.skipWS()
					if c.byteIs(',') {
						c.pos++
						continue
					}
					if !c.byteIs(']') {
						return false
					}
					c.pos++
					out.Safeguards = sgs
					break
				}
			default:
				return false
			}
		}
		c.skipWS()
		if c.byteIs(',') {
			c.pos++
			continue
		}
		if c.byteIs('}') {
			c.pos++
			return true
		}
		return false
	}
}

// DecodeLicenseResponse strictly parses one /v1/license decision body.
// ok is false on any non-canonical input; callers fall back to
// encoding/json (the fast path covers exactly what the daemon emits).
func DecodeLicenseResponse(data []byte, out *LicenseResponse) bool {
	c := jsonCursor{data: data}
	c.skipWS()
	if !c.parseLicenseResponseFields(out) {
		return false
	}
	c.skipWS()
	return c.pos == len(c.data)
}

// DecodeBatchResponse strictly parses a /v1/license batch body; ok is
// false on any non-canonical input.
func DecodeBatchResponse(data []byte, out *BatchResponse) bool {
	c := jsonCursor{data: data}
	c.skipWS()
	if !c.byteIs('{') {
		return false
	}
	c.pos++
	c.skipWS()
	if c.byteIs('}') {
		c.pos++
		c.skipWS()
		return c.pos == len(c.data)
	}
	for {
		c.skipWS()
		key, ok := c.readKey()
		if !ok || string(key) != "decisions" {
			return false
		}
		c.skipWS()
		if !c.byteIs(':') {
			return false
		}
		c.pos++
		c.skipWS()
		if c.lit("null") {
			out.Decisions = nil
		} else if !c.parseBatchItems(&out.Decisions) {
			return false
		}
		c.skipWS()
		if c.byteIs('}') {
			c.pos++
			c.skipWS()
			return c.pos == len(c.data)
		}
		return false
	}
}

// parseBatchItems parses the "decisions" array of a batch response.
func (c *jsonCursor) parseBatchItems(items *[]BatchItem) bool {
	if !c.byteIs('[') {
		return false
	}
	c.pos++
	out := []BatchItem{}
	c.skipWS()
	if c.byteIs(']') {
		c.pos++
		*items = out
		return true
	}
	for {
		c.skipWS()
		out = append(out, BatchItem{})
		item := &out[len(out)-1]
		if !c.lit("null") && !c.parseBatchItem(item) {
			return false
		}
		c.skipWS()
		if c.byteIs(',') {
			c.pos++
			continue
		}
		if c.byteIs(']') {
			c.pos++
			*items = out
			return true
		}
		return false
	}
}

func (c *jsonCursor) parseBatchItem(item *BatchItem) bool {
	if !c.byteIs('{') {
		return false
	}
	c.pos++
	c.skipWS()
	if c.byteIs('}') {
		c.pos++
		return true
	}
	for {
		c.skipWS()
		key, ok := c.readKey()
		if !ok {
			return false
		}
		c.skipWS()
		if !c.byteIs(':') {
			return false
		}
		c.pos++
		c.skipWS()
		switch string(key) {
		case "decision":
			if c.lit("null") {
				break
			}
			item.Decision = new(LicenseResponse)
			if !c.parseLicenseResponseFields(item.Decision) {
				return false
			}
		case "error":
			if c.lit("null") {
				break
			}
			if item.Error, ok = c.readString(); !ok {
				return false
			}
		default:
			return false
		}
		c.skipWS()
		if c.byteIs(',') {
			c.pos++
			continue
		}
		if c.byteIs('}') {
			c.pos++
			return true
		}
		return false
	}
}

// ---- query-string parsing ------------------------------------------------

// queryUnescape is url.QueryUnescape without the error value: '+' means
// space, %XX decodes, malformed escapes report !ok. The common case — no
// escapes at all — returns the input without allocating.
func queryUnescape(s string) (string, bool) {
	plain := true
	n := 0
	for i := 0; i < len(s); {
		switch s[i] {
		case '%':
			if i+2 >= len(s) || !isHex(s[i+1]) || !isHex(s[i+2]) {
				return "", false
			}
			plain = false
			i += 3
		case '+':
			plain = false
			i++
		default:
			i++
		}
		n++
	}
	if plain {
		return s, true
	}
	buf := make([]byte, 0, n)
	for i := 0; i < len(s); {
		switch s[i] {
		case '%':
			buf = append(buf, unhex(s[i+1])<<4|unhex(s[i+2]))
			i += 3
		case '+':
			buf = append(buf, ' ')
			i++
		default:
			buf = append(buf, s[i])
			i++
		}
	}
	return string(buf), true
}

func isHex(b byte) bool {
	return '0' <= b && b <= '9' || 'a' <= b && b <= 'f' || 'A' <= b && b <= 'F'
}

func unhex(b byte) byte {
	switch {
	case '0' <= b && b <= '9':
		return b - '0'
	case 'a' <= b && b <= 'f':
		return b - 'a' + 10
	default:
		return b - 'A' + 10
	}
}

// parseLicenseQuery parses a /v1/license GET query string straight into
// req without materializing url.Values: pairs in order, first occurrence
// of a key wins, pairs with semicolons or malformed escapes skipped —
// exactly the observable behavior of the r.URL.Query()/q.Get path it
// replaces. A returned *statusError carries the response the old path
// would have written.
func parseLicenseQuery(raw string, req *LicenseRequest) *statusError {
	var system, dest, destination, ctp, threshold, date, endUse string
	const (
		seenSystem = 1 << iota
		seenDest
		seenDestination
		seenCTP
		seenThreshold
		seenDate
		seenEndUse
	)
	seen := 0
	for raw != "" {
		var pair string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			pair, raw = raw[:i], raw[i+1:]
		} else {
			pair, raw = raw, ""
		}
		if pair == "" || strings.IndexByte(pair, ';') >= 0 {
			continue
		}
		keyRaw, valRaw := pair, ""
		if i := strings.IndexByte(pair, '='); i >= 0 {
			keyRaw, valRaw = pair[:i], pair[i+1:]
		}
		key, ok := queryUnescape(keyRaw)
		if !ok {
			continue
		}
		var slot *string
		var bit int
		switch key {
		case "system":
			slot, bit = &system, seenSystem
		case "dest":
			slot, bit = &dest, seenDest
		case "destination":
			slot, bit = &destination, seenDestination
		case "ctp":
			slot, bit = &ctp, seenCTP
		case "threshold":
			slot, bit = &threshold, seenThreshold
		case "date":
			slot, bit = &date, seenDate
		case "endUse":
			slot, bit = &endUse, seenEndUse
		default:
			continue
		}
		val, ok := queryUnescape(valRaw)
		if !ok {
			continue
		}
		if seen&bit == 0 {
			seen |= bit
			*slot = val
		}
	}

	req.System = system
	req.Destination = dest
	if req.Destination == "" {
		req.Destination = destination
	}
	req.EndUse = endUse
	if ctp != "" {
		m, err := units.ParseMtops(ctp)
		if err != nil {
			return httpErr(400, "bad ctp: %v", err)
		}
		req.CTP = CTPValue(m)
	}
	if threshold != "" {
		m, err := units.ParseMtops(threshold)
		if err != nil {
			return httpErr(400, "bad threshold: %v", err)
		}
		req.Threshold = CTPValue(m)
	}
	if date != "" {
		d, err := strconv.ParseFloat(date, 64)
		if err != nil {
			return httpErr(400, "bad date %q", date)
		}
		req.Date = d
	}
	return nil
}
