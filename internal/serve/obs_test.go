package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRequestIDEchoed: an inbound X-Request-Id is echoed back (and keys
// the trace), not replaced by a minted one; without one, an ID is minted.
func TestRequestIDEchoed(t *testing.T) {
	h := newTestServer(t).Handler()

	req := httptest.NewRequest("GET", "/v1/healthz", nil)
	req.Header.Set("X-Request-Id", "desk-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "desk-42" {
		t.Errorf("inbound request ID not echoed: got %q, want %q", got, "desk-42")
	}

	rec = do(t, h, "GET", "/v1/healthz", "")
	if rec.Header().Get("X-Request-Id") == "" {
		t.Error("no request ID minted when none was supplied")
	}
}

// TestMetricsScrapeStable is the acceptance criterion: consecutive
// /metrics scrapes of an otherwise-idle daemon are byte-identical — the
// scrape itself is exempt from its own instruments.
func TestMetricsScrapeStable(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	// Some traffic first, so the scrapes carry non-zero counters.
	do(t, h, "GET", "/v1/license?ctp=500&dest=india", "")
	do(t, h, "GET", "/v1/license?ctp=500&dest=india", "")
	do(t, h, "GET", "/v1/healthz", "")

	a := do(t, h, "GET", "/metrics", "")
	b := do(t, h, "GET", "/metrics", "")
	c := do(t, h, "GET", "/metrics", "")
	if a.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", a.Code)
	}
	if ct := a.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) || !bytes.Equal(b.Body.Bytes(), c.Body.Bytes()) {
		t.Error("consecutive scrapes of an idle daemon differ")
	}

	text := a.Body.String()
	for _, want := range []string{
		`http_requests_total{route="/v1/license",class="2xx"} 2`,
		`http_requests_total{route="/v1/healthz",class="2xx"} 1`,
		`cache_hits_total{cache="decisions"} 1`,
		`cache_misses_total{cache="decisions"} 1`,
		`cache_entries{cache="decisions"} 1`,
		`http_panics_total 0`,
		`http_in_flight 0`,
		"# TYPE http_request_ns histogram",
		"build_info{",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricsJSONSnapshot: /v1/metrics serves the same registry as a
// parseable snapshot in the same order.
func TestMetricsJSONSnapshot(t *testing.T) {
	h := newTestServer(t).Handler()
	do(t, h, "GET", "/v1/license?ctp=500&dest=france", "")

	rec := do(t, h, "GET", "/v1/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/metrics: %d", rec.Code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot body: %v", err)
	}
	if len(snap.Metrics) == 0 {
		t.Fatal("empty snapshot")
	}
	found := map[string]bool{}
	for i, m := range snap.Metrics {
		found[m.Name] = true
		if i > 0 {
			prev := snap.Metrics[i-1]
			if m.Name < prev.Name || (m.Name == prev.Name && m.Labels < prev.Labels) {
				t.Errorf("snapshot out of order at %d: %s%s after %s%s",
					i, m.Name, m.Labels, prev.Name, prev.Labels)
			}
		}
	}
	for _, name := range []string{"build_info", "http_requests_total", "http_request_ns", "cache_hits_total"} {
		if !found[name] {
			t.Errorf("snapshot missing %s", name)
		}
	}
}

// TestTraceLicenseDecision follows a decision from the HTTP handler
// through the cache lookup into the evaluation: the miss trace carries a
// safeguards.evaluate span, the hit trace only the cache lookup, and the
// /v1/traces read itself never enters the ring.
func TestTraceLicenseDecision(t *testing.T) {
	h := newTestServer(t).Handler()

	for _, id := range []string{"t-miss", "t-hit"} {
		req := httptest.NewRequest("GET", "/v1/license?ctp=500&dest=india", nil)
		req.Header.Set("X-Request-Id", id)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %s: %d", id, rec.Code)
		}
	}

	rec := do(t, h, "GET", "/v1/traces", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/traces: %d", rec.Code)
	}
	var tr TracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("traces body: %v", err)
	}
	if tr.Count != 2 || len(tr.Traces) != 2 {
		t.Fatalf("got %d traces, want 2", tr.Count)
	}
	if tr.Traces[0].TraceID != "t-hit" || tr.Traces[1].TraceID != "t-miss" {
		t.Fatalf("trace order = %s, %s; want newest first", tr.Traces[0].TraceID, tr.Traces[1].TraceID)
	}

	names := func(tr obs.Trace) []string {
		var out []string
		for _, s := range tr.Spans {
			out = append(out, s.Name)
		}
		return out
	}
	attr := func(s obs.SpanRecord, key string) string {
		for _, a := range s.Attrs {
			if a.Key == key {
				return a.Value
			}
		}
		return ""
	}

	miss := tr.Traces[1]
	if got, want := names(miss), []string{"GET /v1/license", "cache.lookup", "safeguards.evaluate"}; len(got) != len(want) ||
		got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("miss trace spans = %v, want %v", got, want)
	}
	root := miss.Spans[0]
	if root.ID != 1 || root.Parent != 0 {
		t.Errorf("root span ID/Parent = %d/%d", root.ID, root.Parent)
	}
	if attr(root, "status") != "200" || attr(root, "cache") != "miss" {
		t.Errorf("root attrs = %v", root.Attrs)
	}
	if lu := miss.Spans[1]; lu.Parent != 1 || attr(lu, "result") != "miss" {
		t.Errorf("cache.lookup span = %+v", lu)
	}

	hit := tr.Traces[0]
	if got := names(hit); len(got) != 2 || got[1] != "cache.lookup" {
		t.Errorf("hit trace spans = %v, want root + cache.lookup only", got)
	}
	if attr(hit.Spans[1], "result") != "hit" || attr(hit.Spans[0], "cache") != "hit" {
		t.Errorf("hit trace attrs: %+v", hit.Spans)
	}
}

// TestTraceThresholdSnapshot: a non-study-date threshold request reaches
// the snapshot substrate under the trace.
func TestTraceThresholdSnapshot(t *testing.T) {
	h := newTestServer(t).Handler()
	req := httptest.NewRequest("GET", "/v1/threshold?date=1994.5", nil)
	req.Header.Set("X-Request-Id", "t-snap")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("threshold request: %d", rec.Code)
	}

	var tr TracesResponse
	if err := json.Unmarshal(do(t, h, "GET", "/v1/traces", "").Body.Bytes(), &tr); err != nil {
		t.Fatalf("traces body: %v", err)
	}
	if tr.Count == 0 || tr.Traces[0].TraceID != "t-snap" {
		t.Fatalf("threshold trace missing: %+v", tr)
	}
	var sawTake bool
	for _, s := range tr.Traces[0].Spans {
		if s.Name == "snapshot.take" {
			sawTake = true
		}
	}
	if !sawTake {
		t.Errorf("no snapshot.take span in %+v", tr.Traces[0].Spans)
	}
}

// TestTracingDisabled: a negative TraceCapacity turns tracing off
// entirely; requests still work and /v1/traces says so.
func TestTracingDisabled(t *testing.T) {
	s, err := New(Config{Clock: testClock, TraceCapacity: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h := s.Handler()
	if rec := do(t, h, "GET", "/v1/license?ctp=500&dest=india", ""); rec.Code != http.StatusOK {
		t.Fatalf("license with tracing off: %d", rec.Code)
	}
	if rec := do(t, h, "GET", "/v1/traces", ""); rec.Code != http.StatusNotFound {
		t.Errorf("/v1/traces with tracing off: %d, want 404", rec.Code)
	}
}

// TestPprofAbsentFromPublicMux: the profiling endpoints are mounted only
// on the daemon's -debug-addr listener, never on the public handler.
func TestPprofAbsentFromPublicMux(t *testing.T) {
	h := newTestServer(t).Handler()
	for _, p := range []string{"/debug/pprof/", "/debug/pprof/profile", "/debug/pprof/heap"} {
		rec := do(t, h, "GET", p, "")
		if rec.Code != http.StatusNotFound {
			t.Errorf("GET %s = %d on the public mux, want 404", p, rec.Code)
		}
	}
}

// TestStructuredRequestLog: each request produces one slog record with
// the request ID, route, status, duration, and cache state as attrs.
func TestStructuredRequestLog(t *testing.T) {
	var buf bytes.Buffer
	s, err := New(Config{
		Clock:  testClock,
		Logger: slog.New(slog.NewTextHandler(&buf, nil)),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	req := httptest.NewRequest("GET", "/v1/license?ctp=500&dest=india", nil)
	req.Header.Set("X-Request-Id", "log-1")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("request: %d", rec.Code)
	}

	line := buf.String()
	for _, want := range []string{
		"msg=request", "req=log-1", "method=GET", "route=/v1/license",
		"status=200", "duration=", "cache=miss",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %s", want, line)
		}
	}
}

// TestLRUEvictionAccounting: evictions are counted and surface in both
// the stats struct and the healthz body.
func TestLRUEvictionAccounting(t *testing.T) {
	l := NewLRU[string, int](2)
	l.Put("a", 1)
	l.Put("b", 2)
	l.Put("c", 3) // evicts a
	l.Put("b", 4) // replace, no eviction
	st := l.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Size != 2 {
		t.Errorf("size = %d, want 2", st.Size)
	}

	s, err := New(Config{Clock: testClock, CacheSize: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h := s.Handler()
	do(t, h, "GET", "/v1/license?ctp=500&dest=india", "")
	do(t, h, "GET", "/v1/license?ctp=600&dest=india", "")
	var hr HealthResponse
	if err := json.Unmarshal(do(t, h, "GET", "/v1/healthz", "").Body.Bytes(), &hr); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	if hr.Decisions.Evictions != 1 {
		t.Errorf("healthz decision-cache evictions = %d, want 1", hr.Decisions.Evictions)
	}
	text := do(t, h, "GET", "/metrics", "").Body.String()
	if !strings.Contains(text, `cache_evictions_total{cache="decisions"} 1`) {
		t.Error("eviction count missing from /metrics")
	}
}
