package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// fakeClock is an injectable clock whose Sleep advances time instead of
// waiting, so every backoff and breaker cooldown in this suite elapses
// instantly — the whole file runs in well under a second of wall time.
type fakeClock struct {
	mu    sync.Mutex
	now   time.Time
	slept []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(1995, 6, 15, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func (f *fakeClock) Sleep(d time.Duration) {
	f.mu.Lock()
	f.slept = append(f.slept, d)
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func (f *fakeClock) Slept() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.slept...)
}

// scriptTransport answers attempt i with script[i] (an HTTP status, or a
// negative value for a transport error); past the end it repeats the last
// entry. No network is involved, so attempts are instant.
type scriptTransport struct {
	mu     sync.Mutex
	script []int
	calls  int
}

var errScriptedTransport = errors.New("scripted transport failure")

func (s *scriptTransport) RoundTrip(*http.Request) (*http.Response, error) {
	s.mu.Lock()
	i := s.calls
	s.calls++
	s.mu.Unlock()
	if i >= len(s.script) {
		i = len(s.script) - 1
	}
	code := s.script[i]
	if code < 0 {
		return nil, errScriptedTransport
	}
	body := `{}`
	if code < 200 || code > 299 {
		body = `{"error":"scripted failure"}`
	}
	return &http.Response{
		StatusCode: code,
		Header:     make(http.Header),
		Body:       io.NopCloser(strings.NewReader(body)),
	}, nil
}

func (s *scriptTransport) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// scripted builds a fake-clocked client over a scripted transport.
func scripted(t *testing.T, script []int, opts Options) (*Client, *scriptTransport, *fakeClock) {
	t.Helper()
	st := &scriptTransport{script: script}
	fc := newFakeClock()
	opts.HTTPClient = &http.Client{Transport: st}
	opts.Clock = fc.Now
	opts.Sleep = fc.Sleep
	if opts.PerAttemptTimeout == 0 {
		opts.PerAttemptTimeout = -1 // deadlines are meaningless under a fake clock
	}
	c, err := NewWithOptions("http://fake.test", opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, st, fc
}

func TestRetrySchedules(t *testing.T) {
	cases := []struct {
		name        string
		script      []int
		maxAttempts int
		wantErr     bool
		wantStatus  int // APIError status expected when wantErr
		wantCalls   int
	}{
		{name: "first try works", script: []int{200}, maxAttempts: 4, wantCalls: 1},
		{name: "two 503s then success", script: []int{503, 503, 200}, maxAttempts: 4, wantCalls: 3},
		{name: "transport errors then success", script: []int{-1, -1, 200}, maxAttempts: 4, wantCalls: 3},
		{name: "500 and 429 retry too", script: []int{500, 429, 200}, maxAttempts: 4, wantCalls: 3},
		{name: "exhaustion surfaces the last 503", script: []int{503}, maxAttempts: 3, wantErr: true, wantStatus: 503, wantCalls: 3},
		{name: "404 is never retried", script: []int{404, 200}, maxAttempts: 4, wantErr: true, wantStatus: 404, wantCalls: 1},
		{name: "400 is never retried", script: []int{400, 200}, maxAttempts: 4, wantErr: true, wantStatus: 400, wantCalls: 1},
		{name: "retries disabled", script: []int{503, 200}, maxAttempts: 1, wantErr: true, wantStatus: 503, wantCalls: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, st, fc := scripted(t, tc.script, Options{MaxAttempts: tc.maxAttempts})
			_, err := c.Healthz(context.Background())
			if tc.wantErr {
				if err == nil {
					t.Fatal("call succeeded")
				}
				var apiErr *APIError
				if tc.wantStatus != 0 {
					if !errors.As(err, &apiErr) || apiErr.Status != tc.wantStatus {
						t.Fatalf("error %v, want APIError status %d", err, tc.wantStatus)
					}
				}
			} else if err != nil {
				t.Fatalf("call failed: %v", err)
			}
			if got := st.Calls(); got != tc.wantCalls {
				t.Errorf("attempts = %d, want %d", got, tc.wantCalls)
			}
			st2 := c.RetryStats()
			if int(st2.Attempts) != tc.wantCalls {
				t.Errorf("RetryStats.Attempts = %d, want %d", st2.Attempts, tc.wantCalls)
			}
			if int(st2.Retries) != tc.wantCalls-1 {
				t.Errorf("RetryStats.Retries = %d, want %d", st2.Retries, tc.wantCalls-1)
			}
			if len(fc.Slept()) != tc.wantCalls-1 {
				t.Errorf("backoff pauses = %d, want %d", len(fc.Slept()), tc.wantCalls-1)
			}
		})
	}
}

func TestNonIdempotentPostNotRetried(t *testing.T) {
	c, st, _ := scripted(t, []int{503, 200}, Options{MaxAttempts: 4})
	var out struct{}
	err := c.post(context.Background(), "/v1/anything", map[string]string{"k": "v"}, &out, false)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 503 {
		t.Fatalf("error %v, want the first 503 surfaced unretried", err)
	}
	if st.Calls() != 1 {
		t.Fatalf("non-idempotent POST made %d attempts", st.Calls())
	}
}

func TestIdempotentLicensePostRetries(t *testing.T) {
	c, st, _ := scripted(t, []int{503, 200}, Options{MaxAttempts: 4})
	if _, err := c.License(context.Background(), licenseReq()); err != nil {
		t.Fatalf("License: %v", err)
	}
	if st.Calls() != 2 {
		t.Fatalf("license POST made %d attempts, want 2", st.Calls())
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	base, max := 100*time.Millisecond, 2*time.Second
	for seed := uint64(0); seed < 100; seed++ {
		c, err := NewWithOptions("http://fake.test", Options{
			BaseBackoff: base, MaxBackoff: max, JitterSeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for attempt := 1; attempt <= 12; attempt++ {
			cap := base << uint(attempt-1)
			if cap > max || cap <= 0 {
				cap = max
			}
			d := c.backoff(attempt)
			if d < 0 || d >= cap {
				t.Fatalf("seed %d attempt %d: backoff %v outside [0, %v)", seed, attempt, d, cap)
			}
		}
	}
}

func TestBreakerOpensFailsFastAndRecovers(t *testing.T) {
	cooldown := 10 * time.Second
	c, st, fc := scripted(t, []int{503}, Options{
		MaxAttempts: 1, BreakerThreshold: 3, BreakerCooldown: cooldown,
	})
	ctx := context.Background()

	// Three consecutive failures open the breaker.
	for i := 0; i < 3; i++ {
		if _, err := c.Healthz(ctx); err == nil {
			t.Fatal("scripted failure succeeded")
		}
	}
	rs := c.RetryStats()
	if rs.BreakerState != "open" || rs.BreakerOpens != 1 {
		t.Fatalf("after 3 failures: %+v", rs)
	}

	// While open, calls fail fast without touching the transport.
	before := st.Calls()
	_, err := c.Healthz(ctx)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker returned %v", err)
	}
	if st.Calls() != before {
		t.Fatal("fast-fail still hit the transport")
	}

	// After the cooldown, one half-open probe goes through; the scripted
	// 503 reopens the breaker.
	fc.Advance(cooldown)
	if _, err := c.Healthz(ctx); err == nil {
		t.Fatal("failing probe succeeded")
	}
	if st.Calls() != before+1 {
		t.Fatalf("probe attempts = %d, want %d", st.Calls()-before, 1)
	}
	if rs := c.RetryStats(); rs.BreakerState != "open" || rs.BreakerOpens != 2 {
		t.Fatalf("after failed probe: %+v", rs)
	}

	// A successful probe closes it for good.
	st.mu.Lock()
	st.script = []int{200}
	st.mu.Unlock()
	fc.Advance(cooldown)
	if _, err := c.Healthz(ctx); err != nil {
		t.Fatalf("recovering probe failed: %v", err)
	}
	if rs := c.RetryStats(); rs.BreakerState != "closed" {
		t.Fatalf("after recovery: %+v", rs)
	}
}

func TestHalfOpenAdmitsSingleProbe(t *testing.T) {
	fc := newFakeClock()
	c, err := NewWithOptions("http://fake.test", Options{
		BreakerThreshold: 1, BreakerCooldown: time.Second, Clock: fc.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.breakerResult(false, false) // threshold 1: open immediately
	fc.Advance(time.Second)
	probe, err := c.breakerAllow()
	if err != nil {
		t.Fatalf("post-cooldown probe rejected: %v", err)
	}
	if !probe {
		t.Fatal("post-cooldown attempt not marked as the probe")
	}
	// A second caller while the probe is in flight must be rejected.
	if _, err := c.breakerAllow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second half-open caller got %v, want ErrCircuitOpen", err)
	}
	c.breakerResult(true, true)
	if probe, err := c.breakerAllow(); err != nil || probe {
		t.Fatalf("closed breaker: probe=%v err=%v, want plain admission", probe, err)
	}
}

// TestHalfOpenProbeOwnsTheVerdict is the regression test for the
// half-open double-count race: an attempt admitted while the breaker was
// still closed could have its late success land after the breaker opened
// and a probe was dispatched. The old breakerResult treated any success
// as the probe's — it closed the breaker and cleared the probe latch, so
// one healthy response both resolved half-open AND re-armed a second
// probe. Now only the result flagged as the probe's resolves the state.
func TestHalfOpenProbeOwnsTheVerdict(t *testing.T) {
	fc := newFakeClock()
	c, err := NewWithOptions("http://fake.test", Options{
		BreakerThreshold: 1, BreakerCooldown: time.Second, Clock: fc.Now,
	})
	if err != nil {
		t.Fatal(err)
	}

	c.breakerResult(false, false) // open the breaker
	fc.Advance(time.Second)
	if probe, err := c.breakerAllow(); err != nil || !probe {
		t.Fatalf("probe admission: probe=%v err=%v", probe, err)
	}

	// The stale success from a pre-open attempt races in. It must NOT
	// close the breaker or clear the probe latch.
	c.breakerResult(true, false)
	if rs := c.RetryStats(); rs.BreakerState != "half-open" {
		t.Fatalf("stale success resolved the probe: state=%s", rs.BreakerState)
	}
	if _, err := c.breakerAllow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("stale success re-armed a second probe: %v", err)
	}

	// A stale failure must not hijack the verdict either.
	c.breakerResult(false, false)
	if rs := c.RetryStats(); rs.BreakerState != "half-open" {
		t.Fatalf("stale failure moved the state machine: state=%s", rs.BreakerState)
	}

	// The actual probe's failure is what reopens the breaker — exactly
	// one more open, not one per raced result.
	opens := c.RetryStats().BreakerOpens
	c.breakerResult(false, true)
	rs := c.RetryStats()
	if rs.BreakerState != "open" || rs.BreakerOpens != opens+1 {
		t.Fatalf("after probe failure: %+v (opens before: %d)", rs, opens)
	}

	// And after the next cooldown the probe's success closes it.
	fc.Advance(time.Second)
	if probe, err := c.breakerAllow(); err != nil || !probe {
		t.Fatalf("second probe admission: probe=%v err=%v", probe, err)
	}
	c.breakerResult(true, true)
	if rs := c.RetryStats(); rs.BreakerState != "closed" {
		t.Fatalf("probe success left state %s", rs.BreakerState)
	}
}

func TestBreakerDisabled(t *testing.T) {
	c, _, _ := scripted(t, []int{503}, Options{MaxAttempts: 1, BreakerThreshold: -1})
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if _, err := c.Healthz(ctx); errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("disabled breaker opened after %d failures", i)
		}
	}
}

// TestRetryPropertySoak is the seeded 500-case property test: random
// failure prefixes, attempt budgets, and backoff shapes, each case
// checking the attempt cap, the success condition, the retry accounting,
// and the jitter bounds of every pause. The fake clock makes all of it —
// hundreds of simulated backoff-seconds — run in far under a second.
func TestRetryPropertySoak(t *testing.T) {
	start := time.Now()
	for seed := uint64(0); seed < 500; seed++ {
		rng := fault.Stream(seed*2654435761 + 1)
		maxAttempts := 1 + int(rng()*6) // 1..6
		failures := int(rng() * 8)      // 0..7 leading failures
		base := time.Duration(1+int(rng()*50)) * time.Millisecond
		max := base * time.Duration(1+int(rng()*32))

		script := make([]int, 0, failures+1)
		for i := 0; i < failures; i++ {
			if rng() < 0.5 {
				script = append(script, 503)
			} else {
				script = append(script, -1)
			}
		}
		script = append(script, 200)

		c, st, fc := scripted(t, script, Options{
			MaxAttempts: maxAttempts, BaseBackoff: base, MaxBackoff: max,
			BreakerThreshold: -1, JitterSeed: seed,
		})
		_, err := c.Healthz(context.Background())

		wantCalls := failures + 1
		if wantCalls > maxAttempts {
			wantCalls = maxAttempts
		}
		if got := st.Calls(); got != wantCalls {
			t.Fatalf("seed %d: attempts %d, want %d", seed, got, wantCalls)
		}
		if shouldSucceed := failures < maxAttempts; shouldSucceed != (err == nil) {
			t.Fatalf("seed %d: err=%v with %d failures in %d attempts", seed, err, failures, maxAttempts)
		}
		rs := c.RetryStats()
		if int(rs.Retries) != wantCalls-1 {
			t.Fatalf("seed %d: retries %d, want %d", seed, rs.Retries, wantCalls-1)
		}
		slept := fc.Slept()
		if len(slept) != wantCalls-1 {
			t.Fatalf("seed %d: %d pauses for %d retries", seed, len(slept), wantCalls-1)
		}
		for i, d := range slept {
			cap := base << uint(i)
			if cap > max || cap <= 0 {
				cap = max
			}
			if d < 0 || d >= cap {
				t.Fatalf("seed %d retry %d: pause %v outside [0, %v)", seed, i+1, d, cap)
			}
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("500-case soak took %v; the fake clock should keep it under 1s", elapsed)
	}
}

func TestRoundTripCancelledContext(t *testing.T) {
	c, _, _ := scripted(t, []int{503}, Options{MaxAttempts: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Healthz(ctx); err == nil {
		t.Fatal("cancelled context succeeded")
	}
}
