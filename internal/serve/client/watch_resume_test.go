package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// scriptedStream is a fake /v1/watch endpoint with a per-connection
// script: each connection records the ?since cursor it was asked to
// resume from, emits its scripted events, and either severs the stream
// mid-flight or ends it cleanly. It exists to pin WatchResume's cursor
// arithmetic without real WAL timing in the loop.
type scriptedStream struct {
	mu     sync.Mutex
	sinces []string // the ?since query of each connection, in order
	script func(conn int, w http.ResponseWriter)
}

func (s *scriptedStream) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	conn := len(s.sinces)
	s.sinces = append(s.sinces, r.URL.Query().Get("since"))
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/event-stream")
	s.script(conn, w)
}

func (s *scriptedStream) cursors() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.sinces...)
}

// emit writes one SSE event frame and flushes it to the client.
func emit(w http.ResponseWriter, seq uint64) {
	_, _ = fmt.Fprintf(w, "id: %d\nevent: decision\ndata: {\"seq\":%d,\"kind\":\"decision\",\"key\":\"k%d\"}\n\n", seq, seq, seq)
	w.(http.Flusher).Flush()
}

func resumeClient(t *testing.T, url string) *Client {
	t.Helper()
	c, err := NewWithOptions(url, Options{
		MaxAttempts: 3,
		Sleep:       func(time.Duration) {}, // reconnect backoff costs no wall time
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestWatchResumeCursorsFromLastSeen is the reconnect regression test:
// a stream severed mid-events must be resumed from the last delivered
// sequence number — ?since=<cursor>, never ?since=0 — so the server's
// backlog replay hands back exactly the unseen events: nothing is
// re-delivered, nothing is skipped.
func TestWatchResumeCursorsFromLastSeen(t *testing.T) {
	stream := &scriptedStream{script: func(conn int, w http.ResponseWriter) {
		switch conn {
		case 0:
			// Two events, then the connection is killed mid-stream (the
			// aborted handler severs the TCP stream, exactly like a
			// crashed daemon).
			emit(w, 1)
			emit(w, 2)
			panic(http.ErrAbortHandler)
		default:
			// The restarted daemon replays from the cursor: it must have
			// been asked for since=2, so it serves 3 and ends cleanly.
			emit(w, 3)
		}
	}}
	ts := httptest.NewServer(stream)
	defer ts.Close()
	c := resumeClient(t, ts.URL)

	var seqs []uint64
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := c.WatchResume(ctx, 0, func(ev WatchEvent) error {
		seqs = append(seqs, ev.Seq)
		if ev.Seq >= 3 {
			return ErrWatchStopped
		}
		return nil
	})
	if err != nil {
		t.Fatalf("WatchResume: %v", err)
	}
	if want := []uint64{1, 2, 3}; len(seqs) != len(want) || seqs[0] != 1 || seqs[1] != 2 || seqs[2] != 3 {
		t.Fatalf("delivered %v, want %v (exactly once each)", seqs, want)
	}
	cursors := stream.cursors()
	if len(cursors) != 2 {
		t.Fatalf("server saw %d connections (%v), want 2", len(cursors), cursors)
	}
	if cursors[0] != "" {
		t.Errorf("first connection since = %q, want none", cursors[0])
	}
	if cursors[1] != "2" {
		t.Errorf("reconnect since = %q, want \"2\" (the last seen cursor, not 0)", cursors[1])
	}
}

// TestWatchResumeInitialCursorIsHonored pins that an explicit starting
// cursor is passed through on the very first connection.
func TestWatchResumeInitialCursorIsHonored(t *testing.T) {
	stream := &scriptedStream{script: func(conn int, w http.ResponseWriter) {
		emit(w, 8)
	}}
	ts := httptest.NewServer(stream)
	defer ts.Close()
	c := resumeClient(t, ts.URL)
	err := c.WatchResume(context.Background(), 7, func(ev WatchEvent) error {
		return ErrWatchStopped
	})
	if err != nil {
		t.Fatalf("WatchResume: %v", err)
	}
	if cursors := stream.cursors(); cursors[0] != "7" {
		t.Fatalf("first connection since = %q, want \"7\"", cursors[0])
	}
}

// TestWatchResumeGivesUpAfterIdleReconnects pins the failure budget:
// connections that deliver nothing burn attempts; delivering anything
// resets them. Three idle streams with MaxAttempts=3 is an error.
func TestWatchResumeGivesUpAfterIdleReconnects(t *testing.T) {
	stream := &scriptedStream{script: func(conn int, w http.ResponseWriter) {
		// Every connection ends cleanly having delivered nothing.
	}}
	ts := httptest.NewServer(stream)
	defer ts.Close()
	c := resumeClient(t, ts.URL)
	err := c.WatchResume(context.Background(), 0, func(WatchEvent) error { return nil })
	if err == nil {
		t.Fatal("WatchResume returned nil after only idle streams")
	}
	if got := len(stream.cursors()); got != 3 {
		t.Fatalf("server saw %d connections, want MaxAttempts=3", got)
	}
}

// TestWatchResumeSurfacesAPIErrors pins that a refused stream (no
// decision log mounted, say) is returned immediately: reconnecting
// cannot help, and the caller needs the typed error.
func TestWatchResumeSurfacesAPIErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		_, _ = w.Write([]byte(`{"error":"no decision log mounted"}` + "\n"))
	}))
	defer ts.Close()
	c := resumeClient(t, ts.URL)
	err := c.WatchResume(context.Background(), 0, func(WatchEvent) error { return nil })
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("WatchResume = %v, want APIError 404", err)
	}
}

// TestWatchResumeCallbackErrorStopsForGood pins that a non-sentinel
// callback error ends the loop without a reconnect.
func TestWatchResumeCallbackErrorStopsForGood(t *testing.T) {
	stream := &scriptedStream{script: func(conn int, w http.ResponseWriter) {
		emit(w, 1)
		emit(w, 2)
	}}
	ts := httptest.NewServer(stream)
	defer ts.Close()
	c := resumeClient(t, ts.URL)
	boom := errors.New("downstream full")
	err := c.WatchResume(context.Background(), 0, func(ev WatchEvent) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("WatchResume = %v, want the callback's error", err)
	}
	if got := len(stream.cursors()); got != 1 {
		t.Fatalf("server saw %d connections after a callback error, want 1", got)
	}
}
