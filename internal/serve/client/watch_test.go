package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/wal"
)

// testClock matches the serve suite's fixed clock (mid-1995).
func watchTestClock() time.Time { return time.Unix(800000000, 0) }

// walServer stands up a real WAL-mounted daemon behind httptest and a
// client pointed at it. The caller owns both returned closers.
func walServer(t *testing.T) (*httptest.Server, *wal.Log, *Client) {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: t.TempDir(), Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	s, err := serve.New(serve.Config{Clock: watchTestClock, WAL: l})
	if err != nil {
		_ = l.Close()
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	c, err := New(ts.URL, nil)
	if err != nil {
		ts.Close()
		_ = l.Close()
		t.Fatal(err)
	}
	return ts, l, c
}

func TestWatchReceivesRegimeTransition(t *testing.T) {
	ts, l, c := walServer(t)
	defer ts.Close()
	defer func() { _ = l.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	events := make(chan WatchEvent, 16)
	watchErr := make(chan error, 1)
	go func() {
		watchErr <- c.Watch(ctx, 0, func(ev WatchEvent) error {
			events <- ev
			return ErrWatchStopped // one event is all this test needs
		})
	}()

	// Drive one regime transition. The watch goroutine may still be
	// connecting, so commit the transition in a poll loop until either
	// the event arrives or the deadline passes: the ?since replay below
	// proves delivery is not racy for cursored subscribers.
	deadline := time.After(8 * time.Second)
	var got WatchEvent
	i := 0
drive:
	for {
		for _, th := range []string{"2000", "7000"} {
			u := fmt.Sprintf("%s/v1/license?ctp=21125&dest=india&endUse=w%d&threshold=%s", ts.URL, i, th)
			i++
			resp, err := http.Get(u)
			if err != nil {
				t.Fatalf("license: %v", err)
			}
			_ = resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("license: %d", resp.StatusCode)
			}
		}
		select {
		case got = <-events:
			break drive
		case <-deadline:
			t.Fatal("no watch event arrived")
		case <-time.After(50 * time.Millisecond):
		}
	}
	if got.Kind != wal.EventRegime {
		t.Fatalf("event kind = %q, want regime", got.Kind)
	}
	if got.Seq == 0 {
		t.Fatal("event missing sequence number")
	}
	if err := <-watchErr; err != nil {
		t.Fatalf("Watch after ErrWatchStopped: %v", err)
	}

	// A cursored subscriber replays the backlog: since just below the
	// seen Seq must deliver that same event again from the ring.
	var replayed WatchEvent
	err := c.Watch(ctx, got.Seq-1, func(ev WatchEvent) error {
		replayed = ev
		return ErrWatchStopped
	})
	if err != nil {
		t.Fatalf("cursored Watch: %v", err)
	}
	if replayed.Seq != got.Seq || replayed.Kind != got.Kind {
		t.Fatalf("replayed %+v, want %+v", replayed, got)
	}
}

func TestWatchEndsCleanlyOnServerDrain(t *testing.T) {
	ts, l, c := walServer(t)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	watchErr := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		watchErr <- c.Watch(ctx, 0, func(WatchEvent) error { return nil })
	}()
	<-started
	time.Sleep(100 * time.Millisecond) // let the stream establish
	if err := l.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}
	select {
	case err := <-watchErr:
		if err != nil {
			t.Fatalf("Watch on drain returned %v, want nil", err)
		}
	case <-ctx.Done():
		t.Fatal("Watch did not end after the hub closed")
	}
}

func TestWatchCancelledContext(t *testing.T) {
	ts, l, c := walServer(t)
	defer ts.Close()
	defer func() { _ = l.Close() }()

	ctx, cancel := context.WithCancel(context.Background())
	watchErr := make(chan error, 1)
	go func() {
		watchErr <- c.Watch(ctx, 0, func(WatchEvent) error { return nil })
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-watchErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Watch returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled Watch did not return")
	}
}

// TestWatchLoglessDaemonIs404 pins the typed error a Watch against a
// daemon with no decision log gets back.
func TestWatchLoglessDaemonIs404(t *testing.T) {
	s, err := serve.New(serve.Config{Clock: watchTestClock})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c, err := New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	werr := c.Watch(context.Background(), 0, func(WatchEvent) error { return nil })
	var apiErr *APIError
	if !errors.As(werr, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("logless Watch returned %v, want APIError 404", werr)
	}
}

// TestWatchStreamClientHasNoOverallTimeout pins the transport contract:
// the stream client must drop the whole-exchange timeout (it would sever
// a healthy stream) while keeping the configured transport.
func TestWatchStreamClientHasNoOverallTimeout(t *testing.T) {
	c, err := New("http://localhost:8095", nil)
	if err != nil {
		t.Fatal(err)
	}
	sc := c.streamClient()
	if sc.Timeout != 0 {
		t.Fatalf("stream client overall timeout = %v, want none", sc.Timeout)
	}
	if sc.Transport != c.http.Transport {
		t.Fatal("stream client does not reuse the configured transport")
	}
}
