// Package client is the Go client for the hpcexportd query service
// (internal/serve): typed wrappers over the /v1 endpoints that speak the
// same request and response structures the server defines, so a CLI or a
// downstream program gets license decisions, dataset queries, and
// framework snapshots without touching HTTP details.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/serve"
)

// maxResponseBytes caps how much of a response body the client reads.
const maxResponseBytes = 16 << 20

// Client talks to one hpcexportd instance.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the service at base (e.g.
// "http://localhost:8095"). The optional httpClient overrides
// http.DefaultClient, for callers that need timeouts or transports of
// their own.
func New(base string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: bad base URL %q", base)
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}, nil
}

// get issues a GET and decodes the JSON answer into out.
func (c *Client) get(ctx context.Context, path string, query url.Values, out interface{}) error {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

// post issues a POST with a JSON body and decodes the answer into out.
func (c *Client) post(ctx context.Context, path string, body, out interface{}) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

// do executes the request and decodes the body, converting non-2xx
// answers into *APIError values.
func (c *Client) do(req *http.Request, out interface{}) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		apiErr := &APIError{Status: resp.StatusCode}
		var e serve.ErrorResponse
		if err := json.Unmarshal(body, &e); err == nil && e.Error != "" {
			apiErr.Message = e.Error
		} else {
			apiErr.Message = strings.TrimSpace(string(body))
		}
		return apiErr
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// APIError is a non-2xx answer from the service.
type APIError struct {
	Status  int
	Message string
}

// Error renders the status and the service's message.
func (e *APIError) Error() string {
	return fmt.Sprintf("hpcexportd: %d %s: %s", e.Status, http.StatusText(e.Status), e.Message)
}

// License asks for one license decision.
func (c *Client) License(ctx context.Context, req serve.LicenseRequest) (*serve.LicenseResponse, error) {
	var out serve.LicenseResponse
	if err := c.post(ctx, "/v1/license", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// LicenseBatch asks for a batch of license decisions, answered in request
// order.
func (c *Client) LicenseBatch(ctx context.Context, reqs []serve.LicenseRequest) ([]serve.BatchItem, error) {
	var out serve.BatchResponse
	if err := c.post(ctx, "/v1/license", serve.BatchRequest{Requests: reqs}, &out); err != nil {
		return nil, err
	}
	return out.Decisions, nil
}

// Catalog queries the system catalog.
func (c *Client) Catalog(ctx context.Context, q serve.CatalogQuery) (*serve.CatalogResponse, error) {
	var out serve.CatalogResponse
	if err := c.get(ctx, "/v1/catalog", q.Values(), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Apps queries the application-requirements dataset.
func (c *Client) Apps(ctx context.Context, q serve.AppsQuery) (*serve.AppsResponse, error) {
	var out serve.AppsResponse
	if err := c.get(ctx, "/v1/apps", q.Values(), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Threshold fetches the basic-premises snapshot at a date; date 0 means
// the study date. Set project for the frontier projection.
func (c *Client) Threshold(ctx context.Context, date float64, project bool) (*serve.ThresholdResponse, error) {
	v := url.Values{}
	if date != 0 {
		v.Set("date", strconv.FormatFloat(date, 'g', -1, 64))
	}
	if project {
		v.Set("project", "true")
	}
	var out serve.ThresholdResponse
	if err := c.get(ctx, "/v1/threshold", v, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz fetches the service's liveness and cache statistics.
func (c *Client) Healthz(ctx context.Context) (*serve.HealthResponse, error) {
	var out serve.HealthResponse
	if err := c.get(ctx, "/v1/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the service's metric registry as a JSON snapshot.
func (c *Client) Metrics(ctx context.Context) (*obs.Snapshot, error) {
	var out obs.Snapshot
	if err := c.get(ctx, "/v1/metrics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MetricsText fetches the raw Prometheus text exposition from /metrics.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return "", fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	return string(body), nil
}

// Traces fetches the service's recent request traces, newest first.
func (c *Client) Traces(ctx context.Context) (*serve.TracesResponse, error) {
	var out serve.TracesResponse
	if err := c.get(ctx, "/v1/traces", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
