// Package client is the Go client for the hpcexportd query service
// (internal/serve): typed wrappers over the /v1 endpoints that speak the
// same request and response structures the server defines, so a CLI or a
// downstream program gets license decisions, dataset queries, and
// framework snapshots without touching HTTP details.
//
// The client is resilient by default. Every call runs under a bounded
// retry loop with full-jitter exponential backoff and a per-attempt
// timeout; a consecutive-failure circuit breaker fails fast while a
// backend is down and sends a single half-open probe after the cooldown.
// Retries respect idempotency: GETs and the canonical-keyed license POSTs
// (pure functions of their request, by the server's cache contract)
// replay safely; any other mutation-shaped request is never retried.
//
// Everything that makes retries time-dependent is injectable — the clock,
// the sleeper, and the jitter source — so the soak tests run the whole
// schedule in microseconds, and the default jitter stream is seeded, so
// even retry timing is reproducible run over run.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/serve"
)

// maxResponseBytes caps how much of a response body the client reads.
const maxResponseBytes = 16 << 20

// Defaults applied by NewWithOptions for zero Options fields.
const (
	DefaultMaxAttempts       = 4
	DefaultBaseBackoff       = 50 * time.Millisecond
	DefaultMaxBackoff        = 2 * time.Second
	DefaultPerAttemptTimeout = 10 * time.Second
	DefaultBreakerThreshold  = 8
	DefaultBreakerCooldown   = 5 * time.Second

	// DefaultHTTPTimeout bounds a whole exchange on the default HTTP
	// client, and DefaultDialTimeout bounds connection establishment —
	// the fix for the old http.DefaultClient fallback, which had no
	// timeout at all and hung forever on a stalled server.
	DefaultHTTPTimeout = 30 * time.Second
	DefaultDialTimeout = 5 * time.Second
)

// ErrCircuitOpen is returned (wrapped) while the circuit breaker is open
// or a half-open probe is already in flight.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// Options configures a Client's transport and resilience policy. The zero
// value gives the documented defaults.
type Options struct {
	// HTTPClient overrides the default transport (sane dial/overall
	// timeouts). Nil means the package default.
	HTTPClient *http.Client

	// MaxAttempts is the total attempt budget per call, first try
	// included. 0 means DefaultMaxAttempts; 1 disables retries.
	MaxAttempts int

	// BaseBackoff and MaxBackoff shape the full-jitter schedule: attempt
	// n waits uniform[0, min(MaxBackoff, BaseBackoff·2^(n−1))).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// PerAttemptTimeout bounds each individual attempt; 0 means the
	// default, negative disables the per-attempt deadline.
	PerAttemptTimeout time.Duration

	// BreakerThreshold is how many consecutive retryable failures open
	// the breaker. 0 means the default; negative disables the breaker.
	BreakerThreshold int

	// BreakerCooldown is how long an open breaker fails fast before
	// admitting a single half-open probe.
	BreakerCooldown time.Duration

	// Clock supplies the breaker's notion of time. Nil means the wall
	// clock; tests inject a fake so cooldowns elapse instantly.
	Clock func() time.Time

	// Sleep performs backoff pauses. Nil means a real timer that also
	// honors context cancellation; tests inject a fake that advances
	// their clock instead of waiting.
	Sleep func(time.Duration)

	// Jitter supplies uniform [0,1) draws for the backoff schedule. Nil
	// means a deterministic seeded stream (JitterSeed).
	Jitter func() float64

	// JitterSeed seeds the default jitter stream when Jitter is nil.
	JitterSeed uint64

	// Registry, when non-nil, gets the client's retry/breaker instruments
	// registered into it (client_attempts_total, client_retries_total,
	// client_failures_total, client_breaker_opens_total,
	// client_breaker_fastfails_total, client_breaker_state).
	Registry *obs.Registry
}

// defaultHTTPClient is the shared fallback transport: overall and dial
// timeouts so a stalled or unreachable server fails the attempt instead
// of hanging the caller forever.
var defaultHTTPClient = &http.Client{
	Timeout: DefaultHTTPTimeout,
	Transport: &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   DefaultDialTimeout,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout:   DefaultDialTimeout,
		ResponseHeaderTimeout: 15 * time.Second,
		IdleConnTimeout:       90 * time.Second,
		MaxIdleConnsPerHost:   32,
	},
}

// breaker states.
const (
	brClosed = iota
	brOpen
	brHalfOpen
)

// Client talks to one hpcexportd instance. It is safe for concurrent use;
// the breaker and jitter stream are shared across goroutines.
type Client struct {
	base string
	http *http.Client

	maxAttempts int
	baseBackoff time.Duration
	maxBackoff  time.Duration
	perAttempt  time.Duration
	clock       func() time.Time
	sleep       func(time.Duration) // nil: timer-based pause

	brThreshold int // <= 0 disables the breaker
	brCooldown  time.Duration

	mu         sync.Mutex // guards jitter and breaker state
	jitter     func() float64
	brState    int
	brFailures int
	brOpenedAt time.Time
	brProbe    bool // a half-open probe is in flight

	attempts     obs.Counter
	retries      obs.Counter
	failures     obs.Counter
	breakerOpens obs.Counter
	fastFails    obs.Counter
}

// New returns a client for the service at base (e.g.
// "http://localhost:8095") with the default resilience policy. The
// optional httpClient overrides the default transport, for callers that
// need timeouts or transports of their own.
func New(base string, httpClient *http.Client) (*Client, error) {
	return NewWithOptions(base, Options{HTTPClient: httpClient})
}

// NewWithOptions returns a client with an explicit resilience policy.
func NewWithOptions(base string, opts Options) (*Client, error) {
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: bad base URL %q", base)
	}
	if opts.MaxAttempts < 0 {
		return nil, fmt.Errorf("client: negative MaxAttempts %d", opts.MaxAttempts)
	}
	c := &Client{
		base:        strings.TrimRight(base, "/"),
		http:        opts.HTTPClient,
		maxAttempts: opts.MaxAttempts,
		baseBackoff: opts.BaseBackoff,
		maxBackoff:  opts.MaxBackoff,
		perAttempt:  opts.PerAttemptTimeout,
		clock:       opts.Clock,
		sleep:       opts.Sleep,
		brThreshold: opts.BreakerThreshold,
		brCooldown:  opts.BreakerCooldown,
		jitter:      opts.Jitter,
	}
	if c.http == nil {
		c.http = defaultHTTPClient
	}
	if c.maxAttempts == 0 {
		c.maxAttempts = DefaultMaxAttempts
	}
	if c.baseBackoff <= 0 {
		c.baseBackoff = DefaultBaseBackoff
	}
	if c.maxBackoff <= 0 {
		c.maxBackoff = DefaultMaxBackoff
	}
	if c.perAttempt == 0 {
		c.perAttempt = DefaultPerAttemptTimeout
	}
	if c.clock == nil {
		//hpcvet:allow detrand the breaker's documented default is the wall clock; deterministic callers inject Options.Clock
		c.clock = time.Now
	}
	if c.brThreshold == 0 {
		c.brThreshold = DefaultBreakerThreshold
	}
	if c.brCooldown <= 0 {
		c.brCooldown = DefaultBreakerCooldown
	}
	if c.jitter == nil {
		c.jitter = fault.Stream(opts.JitterSeed)
	}
	if opts.Registry != nil {
		registerMetrics(opts.Registry, c)
	}
	return c, nil
}

// registerMetrics exposes the client's counters as read-at-scrape metrics.
func registerMetrics(reg *obs.Registry, c *Client) {
	reg.Func("client_attempts_total", "HTTP attempts issued, retries included", obs.KindCounter,
		func() float64 { return float64(c.attempts.Value()) })
	reg.Func("client_retries_total", "attempts beyond the first, per call", obs.KindCounter,
		func() float64 { return float64(c.retries.Value()) })
	reg.Func("client_failures_total", "retryable attempt failures (transport errors and 5xx/429)", obs.KindCounter,
		func() float64 { return float64(c.failures.Value()) })
	reg.Func("client_breaker_opens_total", "times the circuit breaker opened", obs.KindCounter,
		func() float64 { return float64(c.breakerOpens.Value()) })
	reg.Func("client_breaker_fastfails_total", "calls rejected while the breaker was open", obs.KindCounter,
		func() float64 { return float64(c.fastFails.Value()) })
	reg.Func("client_breaker_state", "0 closed, 1 open, 2 half-open", obs.KindGauge,
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(c.brState) })
}

// RetryStats is a point-in-time accounting of the client's resilience
// machinery.
type RetryStats struct {
	Attempts         uint64 `json:"attempts"`
	Retries          uint64 `json:"retries"`
	Failures         uint64 `json:"failures"`
	BreakerOpens     uint64 `json:"breakerOpens"`
	BreakerFastFails uint64 `json:"breakerFastFails"`
	BreakerState     string `json:"breakerState"`
}

// RetryStats returns the client's cumulative retry and breaker counters.
func (c *Client) RetryStats() RetryStats {
	c.mu.Lock()
	state := c.brState
	c.mu.Unlock()
	names := [...]string{brClosed: "closed", brOpen: "open", brHalfOpen: "half-open"}
	return RetryStats{
		Attempts:         c.attempts.Value(),
		Retries:          c.retries.Value(),
		Failures:         c.failures.Value(),
		BreakerOpens:     c.breakerOpens.Value(),
		BreakerFastFails: c.fastFails.Value(),
		BreakerState:     names[state],
	}
}

// backoff returns the full-jitter pause before the given retry attempt
// (attempt ≥ 1): uniform in [0, min(MaxBackoff, BaseBackoff·2^(attempt−1))).
func (c *Client) backoff(attempt int) time.Duration {
	cap := c.baseBackoff << uint(attempt-1)
	if cap > c.maxBackoff || cap <= 0 { // <= 0: the shift overflowed
		cap = c.maxBackoff
	}
	c.mu.Lock()
	u := c.jitter()
	c.mu.Unlock()
	return time.Duration(u * float64(cap))
}

// pause waits d before the next attempt, honoring ctx cancellation. An
// injected sleeper is trusted to advance the test clock instead.
func (c *Client) pause(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		c.sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// breakerAllow admits or rejects an attempt. An open breaker rejects
// until the cooldown elapses, then flips half-open and admits exactly one
// probe; further calls are rejected until the probe reports back. probe
// is true only for the attempt that owns the half-open verdict — the
// caller must hand the same flag back to breakerResult, so a stale
// response from an attempt admitted before the breaker opened can never
// resolve (or un-arm) a probe it does not own.
func (c *Client) breakerAllow() (probe bool, err error) {
	if c.brThreshold <= 0 {
		return false, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.brState {
	case brClosed:
		return false, nil
	case brOpen:
		if c.clock().Sub(c.brOpenedAt) < c.brCooldown {
			c.fastFails.Inc()
			return false, fmt.Errorf("%w: cooling down", ErrCircuitOpen)
		}
		c.brState = brHalfOpen
		c.brProbe = true
		return true, nil
	default: // half-open
		if c.brProbe {
			c.fastFails.Inc()
			return false, fmt.Errorf("%w: probe in flight", ErrCircuitOpen)
		}
		c.brProbe = true
		return true, nil
	}
}

// breakerResult records an attempt's outcome. Only the probe's result
// resolves a half-open breaker: probe success closes it, probe failure
// reopens it. A non-probe success resets the consecutive-failure count
// but leaves the state machine alone — before the ownership flag, a
// queued retry's late success racing the probe would close the breaker
// and clear the probe latch, double-counting one healthy response and
// letting a second "probe" through. Threshold consecutive non-probe
// failures open a closed breaker.
func (c *Client) breakerResult(ok, probe bool) {
	if c.brThreshold <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if probe {
		c.brProbe = false
		if ok {
			c.brState = brClosed
			c.brFailures = 0
			return
		}
		c.brState = brOpen
		c.brOpenedAt = c.clock()
		c.breakerOpens.Inc()
		return
	}
	if ok {
		c.brFailures = 0
		return
	}
	c.brFailures++
	if c.brState == brClosed && c.brFailures >= c.brThreshold {
		c.brState = brOpen
		c.brOpenedAt = c.clock()
		c.breakerOpens.Inc()
	}
}

// retryableStatus reports whether a status code is safe to retry on an
// idempotent request: transient server-side conditions, not client error.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// roundTrip runs one logical API call under the retry policy and returns
// the successful response body. Only idempotent calls retry; a breaker
// rejection, a non-retryable status, or context cancellation ends the
// loop early. The last attempt's error is always returned wrapped, so
// errors.As still surfaces *APIError after exhaustion.
func (c *Client) roundTrip(ctx context.Context, method, u, contentType string, body []byte, idempotent bool) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
			if err := c.pause(ctx, c.backoff(attempt)); err != nil {
				return nil, fmt.Errorf("client: retry cancelled: %w", err)
			}
		}
		probe, err := c.breakerAllow()
		if err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last error: %w)", err, lastErr)
			}
			return nil, err
		}
		respBody, retryable, err := c.attempt(ctx, method, u, contentType, body)
		if err == nil {
			c.breakerResult(true, probe)
			return respBody, nil
		}
		// A non-retryable status (4xx) is a healthy server declining the
		// request: it resets the breaker rather than charging it.
		c.breakerResult(!retryable, probe)
		if retryable {
			c.failures.Inc()
		}
		lastErr = err
		if !retryable || !idempotent || ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("client: %d attempts failed: %w", c.maxAttempts, lastErr)
}

// attempt performs one HTTP exchange under the per-attempt deadline. A
// non-2xx answer becomes a *APIError; retryable classifies the failure
// (transport errors and transient statuses retry, client errors do not).
func (c *Client) attempt(ctx context.Context, method, u, contentType string, body []byte) (respBody []byte, retryable bool, err error) {
	c.attempts.Inc()
	actx := ctx
	if c.perAttempt > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.perAttempt)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, u, rd)
	if err != nil {
		return nil, false, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, true, err
	}
	defer func() { _ = resp.Body.Close() }()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, true, fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		apiErr := &APIError{Status: resp.StatusCode}
		var e serve.ErrorResponse
		if err := json.Unmarshal(b, &e); err == nil && e.Error != "" {
			apiErr.Message = e.Error
		} else {
			apiErr.Message = strings.TrimSpace(string(b))
		}
		return nil, retryableStatus(resp.StatusCode), apiErr
	}
	return b, false, nil
}

// get issues a GET (idempotent: always retryable) and decodes the JSON
// answer into out.
func (c *Client) get(ctx context.Context, path string, query url.Values, out interface{}) error {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	body, err := c.roundTrip(ctx, http.MethodGet, u, "", nil, true)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// post issues a POST with a JSON body and decodes the answer into out.
// idempotent marks requests that are pure functions of their body (the
// canonical-keyed license decisions); only those replay on failure.
func (c *Client) post(ctx context.Context, path string, body, out interface{}, idempotent bool) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	respBody, err := c.roundTrip(ctx, http.MethodPost, c.base+path, "application/json", buf, idempotent)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(respBody, out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// APIError is a non-2xx answer from the service.
type APIError struct {
	Status  int
	Message string
}

// Error renders the status and the service's message.
func (e *APIError) Error() string {
	return fmt.Sprintf("hpcexportd: %d %s: %s", e.Status, http.StatusText(e.Status), e.Message)
}

// License asks for one license decision. Decisions are canonically keyed
// on the server — replaying the POST cannot double-apply anything — so
// the request retries like a GET. The exchange uses the serve package's
// hot-path codec on both legs (the same encoder the server's fuzz suite
// proves byte-identical to encoding/json), falling back to the stdlib
// for any shape the fast path declines.
func (c *Client) License(ctx context.Context, req serve.LicenseRequest) (*serve.LicenseResponse, error) {
	buf, ok := serve.AppendLicenseRequest(nil, &req)
	if !ok {
		var err error
		if buf, err = json.Marshal(req); err != nil {
			return nil, err
		}
	}
	respBody, err := c.roundTrip(ctx, http.MethodPost, c.base+"/v1/license", "application/json", buf, true)
	if err != nil {
		return nil, err
	}
	out := &serve.LicenseResponse{}
	if !serve.DecodeLicenseResponse(respBody, out) {
		if err := json.Unmarshal(respBody, out); err != nil {
			return nil, fmt.Errorf("client: decoding response: %w", err)
		}
	}
	return out, nil
}

// LicenseBatch asks for a batch of license decisions, answered in request
// order. Batches are idempotent for the same reason single decisions are,
// and ride the same fast codec with the same stdlib fallback.
func (c *Client) LicenseBatch(ctx context.Context, reqs []serve.LicenseRequest) ([]serve.BatchItem, error) {
	buf, ok := serve.AppendBatchRequest(nil, reqs)
	if !ok {
		var err error
		if buf, err = json.Marshal(serve.BatchRequest{Requests: reqs}); err != nil {
			return nil, err
		}
	}
	respBody, err := c.roundTrip(ctx, http.MethodPost, c.base+"/v1/license", "application/json", buf, true)
	if err != nil {
		return nil, err
	}
	var out serve.BatchResponse
	if !serve.DecodeBatchResponse(respBody, &out) {
		if err := json.Unmarshal(respBody, &out); err != nil {
			return nil, fmt.Errorf("client: decoding response: %w", err)
		}
	}
	return out.Decisions, nil
}

// Catalog queries the system catalog.
func (c *Client) Catalog(ctx context.Context, q serve.CatalogQuery) (*serve.CatalogResponse, error) {
	var out serve.CatalogResponse
	if err := c.get(ctx, "/v1/catalog", q.Values(), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Apps queries the application-requirements dataset.
func (c *Client) Apps(ctx context.Context, q serve.AppsQuery) (*serve.AppsResponse, error) {
	var out serve.AppsResponse
	if err := c.get(ctx, "/v1/apps", q.Values(), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Threshold fetches the basic-premises snapshot at a date; date 0 means
// the study date. Set project for the frontier projection.
func (c *Client) Threshold(ctx context.Context, date float64, project bool) (*serve.ThresholdResponse, error) {
	v := url.Values{}
	if date != 0 {
		v.Set("date", strconv.FormatFloat(date, 'g', -1, 64))
	}
	if project {
		v.Set("project", "true")
	}
	var out serve.ThresholdResponse
	if err := c.get(ctx, "/v1/threshold", v, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz fetches the service's liveness, degradation state, and cache
// statistics.
func (c *Client) Healthz(ctx context.Context) (*serve.HealthResponse, error) {
	var out serve.HealthResponse
	if err := c.get(ctx, "/v1/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the service's metric registry as a JSON snapshot.
func (c *Client) Metrics(ctx context.Context) (*obs.Snapshot, error) {
	var out obs.Snapshot
	if err := c.get(ctx, "/v1/metrics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MetricsText fetches the raw Prometheus text exposition from /metrics.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	body, err := c.roundTrip(ctx, http.MethodGet, c.base+"/metrics", "", nil, true)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// SLO fetches the service's burn-rate evaluation: per-route, per-signal
// burn rates over the alerting windows, remaining error budget, and the
// page/ticket verdicts. Fails with a 404 when the daemon was started
// without an SLO profile.
func (c *Client) SLO(ctx context.Context) (*serve.SLOResponse, error) {
	var out serve.SLOResponse
	if err := c.get(ctx, "/v1/slo", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// FlightRec fetches the flight recorder's current contents: the rolling
// window of recent request captures plus the pinned anomaly groups that
// survived ring wrap. Fails with a 404 when the recorder is disabled.
func (c *Client) FlightRec(ctx context.Context) (*serve.FlightRecResponse, error) {
	var out serve.FlightRecResponse
	if err := c.get(ctx, "/v1/flightrec", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Traces fetches the service's recent request traces, newest first.
func (c *Client) Traces(ctx context.Context) (*serve.TracesResponse, error) {
	var out serve.TracesResponse
	if err := c.get(ctx, "/v1/traces", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WatchEvent is one decoded /v1/watch event: a threshold-regime
// transition or an injected fault/degraded notice.
type WatchEvent = serve.WatchEvent

// maxWatchLineBytes bounds one SSE line; events are small JSON objects,
// so anything near this is a protocol violation, not a big event.
const maxWatchLineBytes = 1 << 20

// ErrWatchStopped is the sentinel a Watch callback returns to end the
// stream cleanly: Watch unsubscribes and returns nil.
var ErrWatchStopped = errors.New("client: watch stopped by callback")

// streamClient derives a transport for long-lived streams from the
// configured HTTP client: same connection behavior, but without the
// overall exchange timeout, which would sever a healthy watch stream the
// moment it outlived DefaultHTTPTimeout. Lifetime is governed by the
// caller's context instead.
func (c *Client) streamClient() *http.Client {
	return &http.Client{
		Transport:     c.http.Transport,
		CheckRedirect: c.http.CheckRedirect,
		Jar:           c.http.Jar,
	}
}

// Watch subscribes to the server's /v1/watch commit stream and invokes
// fn for every event, in order, until the context is cancelled, the
// server drains (graceful shutdown ends the stream; Watch returns nil),
// or fn returns an error. since > 0 asks the server to replay its
// ring-buffered backlog of events with Seq > since first, so a
// reconnecting watcher resumes from its last-seen cursor.
//
// Watch is a single long-lived exchange: it does not retry (a resumption
// policy belongs to the caller, who owns the cursor) and bypasses the
// breaker (a healthy stream held open for hours must not be mistaken for
// an outcome worth accounting). A callback error other than
// ErrWatchStopped is returned as-is; ErrWatchStopped maps to nil.
func (c *Client) Watch(ctx context.Context, since uint64, fn func(WatchEvent) error) error {
	u := c.base + "/v1/watch"
	if since > 0 {
		u += "?since=" + strconv.FormatUint(since, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.streamClient().Do(req)
	if err != nil {
		return fmt.Errorf("client: watch connect: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
		apiErr := &APIError{Status: resp.StatusCode}
		var e serve.ErrorResponse
		if jerr := json.Unmarshal(b, &e); jerr == nil && e.Error != "" {
			apiErr.Message = e.Error
		} else {
			apiErr.Message = strings.TrimSpace(string(b))
		}
		return apiErr
	}
	scan := bufio.NewScanner(resp.Body)
	scan.Buffer(make([]byte, 0, 4096), maxWatchLineBytes)
	for scan.Scan() {
		line := scan.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // id:/event:/comment frames; data carries the payload
		}
		var ev WatchEvent
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			return fmt.Errorf("client: decoding watch event: %w", err)
		}
		if err := fn(ev); err != nil {
			if errors.Is(err, ErrWatchStopped) {
				return nil
			}
			return err
		}
	}
	if err := scan.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("client: watch stream: %w", err)
	}
	return nil
}

// WatchResume subscribes like Watch but owns the resumption policy:
// whenever the stream ends without the callback stopping it — a server
// drain, a restart, a severed connection — it reconnects and resumes
// from the sequence number of the last event it delivered, passed as the
// ?since cursor, so the server's backlog replay hands back exactly the
// events this watcher has not seen. Resuming from the cursor (never from
// zero) is what makes a watcher restart-transparent: no event is
// re-delivered and none is skipped, as long as the outage stays inside
// the server's backlog ring.
//
// Reconnects that deliver no events count against the client's attempt
// budget with jittered backoff between them; any delivered event resets
// the budget. A server that refuses the stream outright (an APIError,
// e.g. no decision log mounted) fails immediately — retrying cannot
// help. As with Watch, fn returning ErrWatchStopped ends the stream and
// returns nil; any other callback error is returned as-is.
func (c *Client) WatchResume(ctx context.Context, since uint64, fn func(WatchEvent) error) error {
	cursor := since
	idle := 0
	for {
		delivered := false
		var fnErr error
		err := c.Watch(ctx, cursor, func(ev WatchEvent) error {
			if ev.Seq > cursor {
				cursor = ev.Seq
			}
			delivered = true
			if err := fn(ev); err != nil {
				fnErr = err
				return err
			}
			return nil
		})
		if fnErr != nil {
			if errors.Is(fnErr, ErrWatchStopped) {
				return nil
			}
			return fnErr
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			return err
		}
		if delivered {
			idle = 0
		} else {
			idle++
			if idle >= c.maxAttempts {
				if err != nil {
					return fmt.Errorf("client: watch resume: %d idle reconnects: %w", idle, err)
				}
				return fmt.Errorf("client: watch resume: %d consecutive connections delivered nothing", idle)
			}
		}
		attempt := idle
		if attempt < 1 {
			attempt = 1
		}
		if perr := c.pause(ctx, c.backoff(attempt)); perr != nil {
			return perr
		}
	}
}

// GetJSON performs one GET against an arbitrary path on the configured
// base URL and decodes the JSON answer into out, through the client's
// full retry/breaker machinery. It exists for endpoints the typed
// methods do not cover — a gateway's aggregated /v1/healthz, say —
// without hand-rolling a second HTTP client.
func (c *Client) GetJSON(ctx context.Context, path string, query url.Values, out interface{}) error {
	return c.get(ctx, path, query, out)
}
