package client

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/serve"
)

func licenseReq() serve.LicenseRequest {
	return serve.LicenseRequest{CTP: 1000, Destination: "india", Date: 1995.45}
}

func TestNewValidatesBaseURL(t *testing.T) {
	for _, base := range []string{"", "not a url", "localhost:8095", "http://"} {
		if _, err := New(base, nil); err == nil {
			t.Errorf("New(%q) accepted", base)
		}
	}
	if _, err := New("http://localhost:8095", nil); err != nil {
		t.Fatalf("New rejected a good base: %v", err)
	}
}

func TestNewRejectsNegativeMaxAttempts(t *testing.T) {
	if _, err := NewWithOptions("http://localhost:8095", Options{MaxAttempts: -1}); err == nil {
		t.Fatal("negative MaxAttempts accepted")
	}
}

// TestDefaultClientHasTimeouts is the regression test for the old
// fallback to http.DefaultClient, which has no timeout and would hang
// forever on a stalled server: the default transport must bound both the
// whole exchange and connection establishment.
func TestDefaultClientHasTimeouts(t *testing.T) {
	c, err := New("http://localhost:8095", nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.http.Timeout <= 0 {
		t.Error("default client has no overall timeout")
	}
	tr, ok := c.http.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("default transport is %T, want *http.Transport", c.http.Transport)
	}
	if tr.DialContext == nil {
		t.Error("default transport has no dialing timeout configured")
	}
	if tr.ResponseHeaderTimeout <= 0 {
		t.Error("default transport waits forever for response headers")
	}
}

// TestStalledServerReturnsWithinDeadline opens a listener that accepts
// connections but never writes a byte — the pathological server the old
// http.DefaultClient fallback hung on — and checks that the per-attempt
// timeout surfaces an error promptly.
func TestStalledServerReturnsWithinDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				<-done // hold the connection open, never respond
				_ = c.Close()
			}(conn)
		}
	}()

	c, err := NewWithOptions("http://"+ln.Addr().String(), Options{
		MaxAttempts:       2,
		PerAttemptTimeout: 150 * time.Millisecond,
		BaseBackoff:       time.Millisecond,
		MaxBackoff:        time.Millisecond,
		Sleep:             func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Healthz(context.Background())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call against a stalled server succeeded")
	}
	if elapsed > 3*time.Second {
		t.Fatalf("stalled server held the client for %v", elapsed)
	}
}
