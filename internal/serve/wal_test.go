package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/wal"
)

// newWALServer builds a test server over a decision log in dir.
func newWALServer(t testing.TB, dir string, mutate func(*Config)) (*Server, *wal.Log) {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	cfg := Config{Clock: testClock, WAL: l}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		_ = l.Close()
		t.Fatalf("New: %v", err)
	}
	return s, l
}

// walTestTargets are distinct license queries spanning two regimes.
var walTestTargets = []string{
	"/v1/license?ctp=21125&dest=india&endUse=modeling",
	"/v1/license?ctp=1500&dest=poland&endUse=weather",
	"/v1/license?ctp=21125&dest=india&endUse=modeling&threshold=7000",
	"/v1/license?ctp=500&dest=france",
	"/v1/license?system=Cray+C916&dest=india",
}

func TestWALRestartByteIdentity(t *testing.T) {
	dir := t.TempDir()
	s1, l1 := newWALServer(t, dir, nil)

	before := make(map[string]string, len(walTestTargets))
	for _, target := range walTestTargets {
		rec := do(t, s1.Handler(), "GET", target, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", target, rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("X-Cache"); got != "miss" {
			t.Fatalf("%s first ask: X-Cache=%q, want miss", target, got)
		}
		before[target] = rec.Body.String()
	}
	if err := l1.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}

	// Restart: a new log over the same directory, a new server over it.
	// The first response to every request must come from the replayed
	// cache (X-Cache: hit) and be byte-identical to the pre-restart one.
	s2, l2 := newWALServer(t, dir, nil)
	defer func() { _ = l2.Close() }()
	if got := s2.walReplayed.Load(); got != uint64(len(walTestTargets)) {
		t.Fatalf("replayed %d decisions, want %d (mismatches=%d)",
			got, len(walTestTargets), s2.walMismatches.Load())
	}
	for _, target := range walTestTargets {
		rec := do(t, s2.Handler(), "GET", target, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("%s after restart: %d", target, rec.Code)
		}
		if got := rec.Header().Get("X-Cache"); got != "hit" {
			t.Fatalf("%s after restart: X-Cache=%q, want hit (warm start missed)", target, got)
		}
		if rec.Body.String() != before[target] {
			t.Fatalf("%s after restart: body diverged\nbefore %q\nafter  %q",
				target, before[target], rec.Body.String())
		}
	}
	if s2.walMismatches.Load() != 0 {
		t.Fatalf("replay mismatches = %d, want 0", s2.walMismatches.Load())
	}
}

func TestWALSnapshotCompactionTriggersAndSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, l1 := newWALServer(t, dir, func(cfg *Config) { cfg.SnapshotEvery = 3 })

	before := make(map[string]string, len(walTestTargets))
	for _, target := range walTestTargets {
		rec := do(t, s1.Handler(), "GET", target, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d", target, rec.Code)
		}
		before[target] = rec.Body.String()
	}
	if got := l1.Stats().Compactions; got < 1 {
		t.Fatalf("Compactions = %d after %d commits with SnapshotEvery=3", got, len(walTestTargets))
	}
	if err := l1.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}

	s2, l2 := newWALServer(t, dir, nil)
	defer func() { _ = l2.Close() }()
	if got := l2.Recovery().SnapshotSeq; got == 0 {
		t.Fatal("restart did not recover from a snapshot")
	}
	for _, target := range walTestTargets {
		rec := do(t, s2.Handler(), "GET", target, "")
		if got := rec.Header().Get("X-Cache"); got != "hit" {
			t.Fatalf("%s after compacted restart: X-Cache=%q, want hit", target, got)
		}
		if rec.Body.String() != before[target] {
			t.Fatalf("%s after compacted restart: body diverged", target)
		}
	}
}

func TestWatchWithoutWALIs404(t *testing.T) {
	h := newTestServer(t).Handler()
	rec := do(t, h, "GET", "/v1/watch", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("watch without WAL: %d, want 404", rec.Code)
	}
	if post := do(t, h, "POST", "/v1/watch", ""); post.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST watch: %d, want 405", post.Code)
	}
}

// watchStream opens /v1/watch against a live server and returns decoded
// events on a channel.
func watchStream(t *testing.T, ctx context.Context, base, since string) <-chan wal.Event {
	t.Helper()
	url := base + "/v1/watch"
	if since != "" {
		url += "?since=" + since
	}
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		t.Fatalf("watch request: %v", err)
	}
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		t.Fatalf("watch connect: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch content type: %q", ct)
	}
	events := make(chan wal.Event, 16)
	go func() {
		defer resp.Body.Close()
		defer close(events)
		scan := bufio.NewScanner(resp.Body)
		for scan.Scan() {
			line := scan.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev wal.Event
			if json.Unmarshal([]byte(line[len("data: "):]), &ev) == nil {
				events <- ev
			}
		}
	}()
	return events
}

func TestWatchStreamsRegimeTransitions(t *testing.T) {
	dir := t.TempDir()
	s, l := newWALServer(t, dir, nil)
	defer func() { _ = l.Close() }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	events := watchStream(t, ctx, ts.URL, "")

	// Two commits under one threshold, then one under another: exactly
	// one regime transition.
	for i, th := range []string{"2000", "2000", "7000"} {
		target := fmt.Sprintf("%s/v1/license?ctp=21125&dest=india&endUse=watch%d&threshold=%s", ts.URL, i, th)
		resp, err := http.Get(target)
		if err != nil {
			t.Fatalf("license: %v", err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("license: %d", resp.StatusCode)
		}
	}

	select {
	case ev := <-events:
		if ev.Kind != wal.EventRegime {
			t.Fatalf("event kind = %q, want regime", ev.Kind)
		}
		if ev.PrevMtops != 2000 || ev.Mtops != 7000 {
			t.Fatalf("transition %v -> %v, want 2000 -> 7000", ev.PrevMtops, ev.Mtops)
		}
		if ev.Seq == 0 {
			t.Fatal("event missing sequence number")
		}
	case <-ctx.Done():
		t.Fatal("no regime-transition event arrived")
	}

	// A second subscriber using ?since=0 replays the same event from the
	// ring instead of needing new traffic.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	replayed := watchStream(t, ctx2, ts.URL, "0")
	select {
	case ev := <-replayed:
		if ev.Kind != wal.EventRegime || ev.Mtops != 7000 {
			t.Fatalf("replayed event = %+v", ev)
		}
	case <-ctx2.Done():
		t.Fatal("since=0 subscriber got no backlog event")
	}
}

func TestWatchStreamEndsOnHubClose(t *testing.T) {
	dir := t.TempDir()
	s, l := newWALServer(t, dir, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	events := watchStream(t, ctx, ts.URL, "")

	// Closing the log closes the hub; the stream must end promptly — this
	// is the property that keeps graceful drain from waiting out watchers.
	if err := l.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}
	select {
	case _, ok := <-events:
		if ok {
			// Drain any buffered event; the channel must still close.
			for range events {
			}
		}
	case <-ctx.Done():
		t.Fatal("watch stream did not end after hub close")
	}
}

func TestParseDecisionKeyInvertsAppend(t *testing.T) {
	s := newTestServer(t)
	reqs := []LicenseRequest{
		{CTP: 21125, Destination: "India", EndUse: "modeling"},
		{CTP: 1500, Destination: "poland", Threshold: 7000},
		{System: "Cray C916", Destination: "russia", EndUse: "oil"},
	}
	for _, req := range reqs {
		var a fillArgs
		if herr := s.resolveLicense(&req, &a); herr != nil {
			t.Fatalf("resolve %+v: %v", req, herr)
		}
		key := string(appendDecisionKey(nil, &a))
		var back fillArgs
		if !parseDecisionKey(key, &back) {
			t.Fatalf("parseDecisionKey rejected %q", key)
		}
		if back != a {
			t.Fatalf("round trip %+v != %+v", back, a)
		}
	}
	var junk fillArgs
	for _, bad := range []string{"", "a\x1fb", "a\x1fx\x1fc\x1fd\x1f2", "a\x1f1\x1fc\x1fd\x1fx"} {
		if parseDecisionKey(bad, &junk) {
			t.Fatalf("parseDecisionKey accepted %q", bad)
		}
	}
}

func TestWALHealthAndMetricsExposure(t *testing.T) {
	dir := t.TempDir()
	s, l := newWALServer(t, dir, nil)
	defer func() { _ = l.Close() }()
	h := s.Handler()
	if rec := do(t, h, "GET", walTestTargets[0], ""); rec.Code != http.StatusOK {
		t.Fatalf("license: %d", rec.Code)
	}

	var hr HealthResponse
	rec := do(t, h, "GET", "/v1/healthz", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if hr.WAL == nil {
		t.Fatal("healthz missing wal block while a log is mounted")
	}
	if hr.WAL.Appends != 1 {
		t.Fatalf("healthz wal.appends = %d, want 1", hr.WAL.Appends)
	}

	prom := do(t, h, "GET", "/metrics", "").Body.String()
	for _, family := range []string{
		"wal_appends_total", "wal_fsyncs_total", "snapshot_compactions_total",
		"watch_subscribers", "wal_replay_mismatches_total",
	} {
		if !strings.Contains(prom, family) {
			t.Errorf("/metrics missing %s while a log is mounted", family)
		}
	}

	// And the logless exposition must not grow: no wal families.
	bare := do(t, newTestServer(t).Handler(), "GET", "/metrics", "").Body.String()
	if strings.Contains(bare, "wal_") || strings.Contains(bare, "watch_") {
		t.Error("logless daemon exposes wal/watch metric families")
	}
	var bareHealth HealthResponse
	recBare := do(t, newTestServer(t).Handler(), "GET", "/v1/healthz", "")
	if err := json.Unmarshal(recBare.Body.Bytes(), &bareHealth); err != nil {
		t.Fatal(err)
	}
	if bareHealth.WAL != nil {
		t.Error("logless healthz reports a wal block")
	}
}
