package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/url"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/units"
)

// trickyStrings exercises every escape class the stdlib encoder handles:
// HTML escaping, two-byte escapes, control bytes, invalid UTF-8, the
// line-separator runes, and surrogate-pair material.
var trickyStrings = []string{
	"",
	"plain ascii",
	`quotes " and \ backslash`,
	"<script>&amp;</script>",
	"tabs\tnewlines\nreturns\r",
	"control \x00 \x01 \x1f bytes",
	"invalid \xff\xfe utf-8 \xc3\x28",
	"line\u2028and\u2029separators",
	"music \U0001D11E beyond the BMP",
	"caf\u00e9 ﬀ ligature",
}

var trickyFloats = []float64{
	0, 1, -1, 21125, 1500, 0.5, -0.25, 1e-7, 1e21, 1e20, 123456.789,
	math.SmallestNonzeroFloat64, math.MaxFloat64, math.Inf(1), math.NaN(),
}

// FuzzAppendLicenseResponse is the encoder half of the byte-identity
// contract: every response the fast encoder accepts renders exactly the
// bytes json.Marshal renders, and every response it declines is one
// json.Marshal errors on (non-finite floats).
func FuzzAppendLicenseResponse(f *testing.F) {
	for i, s := range trickyStrings {
		fl := trickyFloats[i%len(trickyFloats)]
		f.Add(s, s, s, s, s, s, s, s, fl, fl, uint8(i))
	}
	f.Add("Cray C916", "india", "weather", "certification required", "approve with safeguards",
		"rationale", "on-site audit", "remote access controls", 21125.0, 1500.0, uint8(3))

	f.Fuzz(func(t *testing.T, system, dest, endUse, tier, outcome, rationale, sg1, sg2 string,
		ctp, th float64, nsg uint8) {
		r := &LicenseResponse{
			System: system, Destination: dest, EndUse: endUse, Tier: tier,
			CTPMtops: ctp, ThresholdMtops: th, Outcome: outcome, Rationale: rationale,
		}
		switch nsg % 4 {
		case 1:
			r.Safeguards = []string{}
		case 2:
			r.Safeguards = []string{sg1}
		case 3:
			r.Safeguards = []string{sg1, sg2}
		}
		got, ok := appendLicenseResponse(nil, r)
		want, err := json.Marshal(r)
		if !ok {
			if err == nil {
				t.Fatalf("fast encoder declined %+v but json.Marshal accepted: %s", r, want)
			}
			return
		}
		if err != nil {
			t.Fatalf("fast encoder accepted %+v but json.Marshal errored: %v", r, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("encoding diverged for %+v:\nfast:   %s\nstdlib: %s", r, got, want)
		}
	})
}

// FuzzAppendLicenseRequest proves the request encoder byte-identical to
// json.Marshal, including CTPValue's canonical 'g'-format rendering.
func FuzzAppendLicenseRequest(f *testing.F) {
	for i, s := range trickyStrings {
		fl := trickyFloats[i%len(trickyFloats)]
		f.Add(s, s, s, fl, fl, fl)
	}
	f.Add("Cray C916", "india", "weather", 21125.0, 1500.0, 1995.45)
	f.Add("", "japan", "", 4500.0, 0.0, 0.0)

	f.Fuzz(func(t *testing.T, system, dest, endUse string, ctp, th, date float64) {
		r := &LicenseRequest{
			System: system, CTP: CTPValue(ctp), Destination: dest,
			EndUse: endUse, Threshold: CTPValue(th), Date: date,
		}
		got, ok := AppendLicenseRequest(nil, r)
		want, err := json.Marshal(r)
		if !ok {
			if err == nil {
				t.Fatalf("fast encoder declined %+v but json.Marshal accepted: %s", r, want)
			}
			return
		}
		if err != nil {
			t.Fatalf("fast encoder accepted %+v but json.Marshal errored: %v", r, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("encoding diverged for %+v:\nfast:   %s\nstdlib: %s", r, got, want)
		}
	})
}

// TestAppendBatchRequestMatchesStdlib covers the nil, empty, and mixed
// batch shapes against json.Marshal.
func TestAppendBatchRequestMatchesStdlib(t *testing.T) {
	cases := [][]LicenseRequest{
		nil,
		{},
		{{CTP: 21125, Destination: "india"}},
		{{System: "Cray C916", Destination: "iran"}, {CTP: 4.5, Destination: "日本", EndUse: "<cfd>"}},
	}
	for _, reqs := range cases {
		got, ok := AppendBatchRequest(nil, reqs)
		if !ok {
			t.Fatalf("encoder declined %+v", reqs)
		}
		want, err := json.Marshal(BatchRequest{Requests: reqs})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("batch encoding diverged:\nfast:   %s\nstdlib: %s", got, want)
		}
	}
}

// FuzzParseLicensePostBody is the decoder half of the contract: every
// body the strict parser accepts must decode identically under the
// verbatim stdlib path (DisallowUnknownFields + trailing-data check), so
// falling back on !ok can never change an accepted request's meaning.
func FuzzParseLicensePostBody(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"ctp":21125,"destination":"india","endUse":"weather modeling"}`,
		`{"system":"Cray C916","destination":"India","threshold":1500,"date":1992.5}`,
		`{"ctp":"4.5k","destination":"france"}`,
		`{"ctp":"21,125 Mtops","destination":" INDIA "}`,
		` { "ctp" : 1e3 , "destination" : "x" } `,
		`{"requests":[]}`,
		`{"requests":null}`,
		`{"requests":[{"ctp":200,"destination":"japan"},null,{"system":"nope","destination":"x"}]}`,
		`{"destination":"caf\u00e9 \ud834\udd1e \uD800 end"}`,
		`{"destination":"dup","destination":"wins"}`,
		`{"ctp":5,"destination":"india"} garbage`,
		`{"CTP":5,"destination":"india"}`,
		`{"unknown":1}`,
		`{"ctp":-0.5e-2,"destination":"0"}`,
		`[]`,
		`{"ctp":`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		var fast licensePostBody
		if !parseLicensePostBody([]byte(body), &fast) {
			return
		}
		dec := json.NewDecoder(strings.NewReader(body))
		dec.DisallowUnknownFields()
		var ref licensePostBody
		if err := dec.Decode(&ref); err != nil {
			t.Fatalf("fast parser accepted %q but stdlib rejects it: %v", body, err)
		}
		if dec.More() {
			t.Fatalf("fast parser accepted %q but stdlib sees trailing data", body)
		}
		if !reflect.DeepEqual(fast, ref) {
			t.Fatalf("decoding diverged for %q:\nfast:   %+v\nstdlib: %+v", body, fast, ref)
		}
	})
}

// FuzzDecodeLicenseResponse: every body the strict response decoder
// accepts must produce exactly the struct json.Unmarshal produces.
func FuzzDecodeLicenseResponse(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"destination":"india","tier":"certification required","ctpMtops":21125,"thresholdMtops":1500,"outcome":"approve with safeguards","safeguards":["a","b"],"rationale":"r"}`,
		`{"system":"Cray C916","destination":"iran","tier":"restricted","ctpMtops":1e4,"thresholdMtops":195,"outcome":"deny","rationale":"embargo"}`,
		`{"safeguards":[]}`,
		`{"safeguards":null,"rationale":null}`,
		`{"destination":"caf\u00e9 \ud834\udd1e"}`,
		`{"ctpMtops":"not a number"}`,
		` { "outcome" : "x" } extra`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var fast LicenseResponse
		if !DecodeLicenseResponse(data, &fast) {
			return
		}
		var ref LicenseResponse
		if err := json.Unmarshal(data, &ref); err != nil {
			t.Fatalf("fast decoder accepted %q but stdlib rejects it: %v", data, err)
		}
		if !reflect.DeepEqual(fast, ref) {
			t.Fatalf("decoding diverged for %q:\nfast:   %+v\nstdlib: %+v", data, fast, ref)
		}
	})
}

// FuzzDecodeBatchResponse mirrors FuzzDecodeLicenseResponse for the
// batch shape.
func FuzzDecodeBatchResponse(f *testing.F) {
	seeds := []string{
		`{"decisions":[]}`,
		`{"decisions":null}`,
		`{"decisions":[{"decision":{"destination":"india","tier":"t","ctpMtops":1,"thresholdMtops":2,"outcome":"o","rationale":"r"}},{"error":"unknown system \"nope\""}]}`,
		`{"decisions":[null,{}]}`,
		`{"decisions":[{"decision":null,"error":null}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var fast BatchResponse
		if !DecodeBatchResponse(data, &fast) {
			return
		}
		var ref BatchResponse
		if err := json.Unmarshal(data, &ref); err != nil {
			t.Fatalf("fast decoder accepted %q but stdlib rejects it: %v", data, err)
		}
		if !reflect.DeepEqual(fast, ref) {
			t.Fatalf("decoding diverged for %q:\nfast:   %+v\nstdlib: %+v", data, fast, ref)
		}
	})
}

// refParseLicenseQuery is the replaced url.Values-based GET parser,
// kept verbatim as the differential reference for parseLicenseQuery.
func refParseLicenseQuery(raw string) (LicenseRequest, *statusError) {
	q, _ := url.ParseQuery(raw)
	req := LicenseRequest{
		System:      q.Get("system"),
		Destination: q.Get("dest"),
		EndUse:      q.Get("endUse"),
	}
	if req.Destination == "" {
		req.Destination = q.Get("destination")
	}
	if v := q.Get("ctp"); v != "" {
		m, err := units.ParseMtops(v)
		if err != nil {
			return req, httpErr(400, "bad ctp: %v", err)
		}
		req.CTP = CTPValue(m)
	}
	if v := q.Get("threshold"); v != "" {
		m, err := units.ParseMtops(v)
		if err != nil {
			return req, httpErr(400, "bad threshold: %v", err)
		}
		req.Threshold = CTPValue(m)
	}
	if v := q.Get("date"); v != "" {
		d, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return req, httpErr(400, "bad date %q", v)
		}
		req.Date = d
	}
	return req, nil
}

// FuzzParseLicenseQuery proves the allocation-free query parser
// observably identical to the url.Values path it replaced: same parsed
// request, same error status and text, for arbitrary raw query strings.
func FuzzParseLicenseQuery(f *testing.F) {
	seeds := []string{
		"ctp=21125&dest=india&endUse=modeling",
		"system=Cray+C916&dest=iran",
		"ctp=4.5k&destination=france&date=1992.5",
		"dest=a&dest=b&destination=c",
		"ctp=bogus&dest=x",
		"threshold=nope",
		"date=yesterday",
		"ctp=1;dest=x&threshold=2",
		"a=%zz&ctp=100&dest=ok%20then",
		"ctp=%31%30%30&dest=%e6%97%a5%e6%9c%ac",
		"=nokey&&dest",
		"dest=trailing%2",
		"endUse=a+b%2Bc",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		var fast LicenseRequest
		fastErr := parseLicenseQuery(raw, &fast)
		want, refErr := refParseLicenseQuery(raw)
		if (fastErr == nil) != (refErr == nil) {
			t.Fatalf("error divergence for %q: fast=%v ref=%v", raw, fastErr, refErr)
		}
		if fastErr != nil {
			if fastErr.code != refErr.code || fastErr.Error() != refErr.Error() {
				t.Fatalf("error mismatch for %q: fast=%d %q ref=%d %q",
					raw, fastErr.code, fastErr.Error(), refErr.code, refErr.Error())
			}
			return
		}
		if fast != want {
			t.Fatalf("parse divergence for %q:\nfast: %+v\nref:  %+v", raw, fast, want)
		}
	})
}

// FuzzQueryUnescape pins queryUnescape to url.QueryUnescape.
func FuzzQueryUnescape(f *testing.F) {
	for _, s := range []string{"", "plain", "a+b", "%41%6243", "%zz", "%4", "100%", "%e6%97%a5"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got, ok := queryUnescape(s)
		want, err := url.QueryUnescape(s)
		if ok != (err == nil) {
			t.Fatalf("acceptance divergence for %q: fast ok=%v, stdlib err=%v", s, ok, err)
		}
		if ok && got != want {
			t.Fatalf("unescape divergence for %q: fast %q, stdlib %q", s, got, want)
		}
	})
}

// TestAppendJSONFloatMatchesStdlib sweeps the float encoder's format
// breakpoints against json.Marshal.
func TestAppendJSONFloatMatchesStdlib(t *testing.T) {
	for _, v := range trickyFloats {
		got, ok := appendJSONFloat(nil, v)
		want, err := json.Marshal(v)
		if !ok {
			if err == nil {
				t.Errorf("appendJSONFloat declined %v but json.Marshal accepted", v)
			}
			continue
		}
		if err != nil {
			t.Errorf("appendJSONFloat accepted %v but json.Marshal errored: %v", v, err)
			continue
		}
		if string(got) != string(want) {
			t.Errorf("float %v: fast %s, stdlib %s", v, got, want)
		}
	}
}
