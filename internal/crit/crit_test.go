package crit

import (
	"errors"
	"math"
	"testing"
)

func TestMaterialValidate(t *testing.T) {
	if err := FissileSlab.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Material{D: -1, SigmaA: 1, NuSigF: 1}).Validate(); err == nil {
		t.Error("invalid material accepted")
	}
}

func TestAnalyticCriticalHalfThickness(t *testing.T) {
	ac, err := FissileSlab.CriticalHalfThickness()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pi / 2 * math.Sqrt(1.2/(0.16-0.08))
	if math.Abs(ac-want) > 1e-12 {
		t.Errorf("a_c = %v, want %v", ac, want)
	}
	sub := Material{Name: "dead", D: 1, SigmaA: 0.2, NuSigF: 0.1}
	if _, err := sub.CriticalHalfThickness(); err == nil {
		t.Error("subcritical material returned a critical size")
	}
}

// TestSolveMatchesAnalytic: at the analytic critical half-thickness, the
// numerical k is 1 to mesh accuracy, and the mesh-refinement error
// shrinks.
func TestSolveMatchesAnalytic(t *testing.T) {
	ac, err := FissileSlab.CriticalHalfThickness()
	if err != nil {
		t.Fatal(err)
	}
	var prevErr float64 = math.Inf(1)
	for _, n := range []int{20, 40, 80, 160} {
		r, err := Solve(FissileSlab, ac, n, 1e-12, 20000)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		e := math.Abs(r.K - 1)
		if e > 0.01 {
			t.Errorf("n=%d: k = %v, want ≈1", n, r.K)
		}
		if e > prevErr {
			t.Errorf("n=%d: error %v did not shrink from %v under refinement", n, e, prevErr)
		}
		prevErr = e
	}
}

// TestKMonotoneInSize: bigger slabs are more multiplying.
func TestKMonotoneInSize(t *testing.T) {
	prev := 0.0
	for _, a := range []float64{3, 5, 8, 12, 20} {
		r, err := Solve(FissileSlab, a, 100, 1e-10, 20000)
		if err != nil {
			t.Fatalf("a=%v: %v", a, err)
		}
		if r.K <= prev {
			t.Errorf("k not monotone in size at a=%v: %v after %v", a, r.K, prev)
		}
		prev = r.K
	}
}

// TestSubAndSuperCritical: below the critical size k < 1, above it k > 1.
func TestSubAndSuperCritical(t *testing.T) {
	ac, _ := FissileSlab.CriticalHalfThickness()
	small, err := Solve(FissileSlab, 0.7*ac, 120, 1e-10, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if small.K >= 1 {
		t.Errorf("undersized slab k = %v", small.K)
	}
	big, err := Solve(FissileSlab, 1.4*ac, 120, 1e-10, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if big.K <= 1 {
		t.Errorf("oversized slab k = %v", big.K)
	}
}

// TestFluxIsFundamentalMode: the converged flux is positive, peaked at the
// center, symmetric, and cosine-shaped.
func TestFluxIsFundamentalMode(t *testing.T) {
	ac, _ := FissileSlab.CriticalHalfThickness()
	r, err := Solve(FissileSlab, ac, 101, 1e-12, 20000)
	if err != nil {
		t.Fatal(err)
	}
	n := len(r.Flux)
	mid := n / 2
	if r.Flux[mid] < 0.999 {
		t.Errorf("flux not peaked at center: %v", r.Flux[mid])
	}
	for i, v := range r.Flux {
		if v <= 0 {
			t.Fatalf("non-positive flux at %d", i)
		}
		if d := math.Abs(v - r.Flux[n-1-i]); d > 1e-9 {
			t.Fatalf("flux asymmetric at %d: %v", i, d)
		}
	}
	// Cosine shape: compare a quarter-point against cos(π/4).
	quarter := n / 4
	x := float64(quarter+1)/float64(n+1)*2 - 1 // position in [-1, 1]
	want := math.Cos(math.Pi / 2 * x)
	if math.Abs(r.Flux[quarter]-want) > 0.02 {
		t.Errorf("flux[%d] = %v, cosine predicts %v", quarter, r.Flux[quarter], want)
	}
}

// TestCriticalSearchFindsAnalytic: the bisection recovers the analytic
// critical size to mesh accuracy.
func TestCriticalSearchFindsAnalytic(t *testing.T) {
	ac, _ := FissileSlab.CriticalHalfThickness()
	got, err := CriticalSearch(FissileSlab, 0.5*ac, 2*ac, 1e-4, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-ac)/ac > 0.01 {
		t.Errorf("critical search found %v, analytic %v", got, ac)
	}
}

func TestCriticalSearchBracketError(t *testing.T) {
	ac, _ := FissileSlab.CriticalHalfThickness()
	if _, err := CriticalSearch(FissileSlab, 2*ac, 3*ac, 1e-3, 100); err == nil {
		t.Error("unbracketed search succeeded")
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(FissileSlab, 10, 2, 1e-8, 100); !errors.Is(err, ErrBadMesh) {
		t.Errorf("tiny mesh: %v", err)
	}
	if _, err := Solve(FissileSlab, -1, 50, 1e-8, 100); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := Solve(Material{}, 10, 50, 1e-8, 100); err == nil {
		t.Error("invalid material accepted")
	}
	if _, err := Solve(FissileSlab, 10, 50, 1e-15, 2); !errors.Is(err, ErrConverge) {
		t.Errorf("iteration starvation: %v", err)
	}
}

// TestRunsInstantly: the point of the exercise — a criticality
// calculation is trivial computing, as the paper insists. A full solve
// must finish in well under a CPU millisecond-scale budget even on this
// test machine.
func TestRunsInstantly(t *testing.T) {
	ac, _ := FissileSlab.CriticalHalfThickness()
	r, err := Solve(FissileSlab, ac, 200, 1e-10, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Iterations > 5000 {
		t.Errorf("power iteration took %d iterations; should converge fast for the fundamental mode", r.Iterations)
	}
}
