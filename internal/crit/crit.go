// Package crit is the nuclear-mission substrate: a one-dimensional
// one-group neutron-diffusion criticality solver of the kind every
// weapons-physics and reactor code descends from. The paper's Chapter 4
// demolishes the "common knowledge" that enormous computing power is
// required for basic nuclear design — "basic nuclear weapons design can be
// accomplished on a personal computer" — and this package is the concrete
// demonstration: the k-eigenvalue power iteration below solves the
// canonical criticality problem in milliseconds on anything.
//
// The model: one-group diffusion on a slab of half-thickness a with
// vacuum (extrapolated zero-flux) boundaries,
//
//	-D φ'' + Σa φ = (1/k) νΣf φ ,
//
// discretized by central differences and solved for the fundamental
// eigenpair (k, φ) by power iteration with a tridiagonal (Thomas) solve
// per step. The analytic benchmark: criticality (k = 1) occurs when the
// geometric buckling (π/2a)² equals the material buckling
// (νΣf − Σa)/D, giving the critical half-thickness
// a_c = (π/2)·√(D/(νΣf − Σa)).
package crit

import (
	"errors"
	"fmt"
	"math"
)

// Material is a one-group medium.
type Material struct {
	Name   string
	D      float64 // diffusion coefficient, cm
	SigmaA float64 // macroscopic absorption cross-section, 1/cm
	NuSigF float64 // ν·Σf fission production cross-section, 1/cm
}

// Validate reports configuration errors.
func (m Material) Validate() error {
	if m.D <= 0 || m.SigmaA <= 0 || m.NuSigF <= 0 {
		return fmt.Errorf("crit: invalid material %+v", m)
	}
	return nil
}

// Buckling returns the material buckling B² = (νΣf − Σa)/D. Positive
// buckling means a critical size exists.
func (m Material) Buckling() float64 { return (m.NuSigF - m.SigmaA) / m.D }

// CriticalHalfThickness returns the analytic bare-slab critical
// half-thickness. It returns an error for subcritical material (no size
// goes critical).
func (m Material) CriticalHalfThickness() (float64, error) {
	b2 := m.Buckling()
	if b2 <= 0 {
		return 0, fmt.Errorf("crit: %s cannot go critical (material buckling %.3e)", m.Name, b2)
	}
	return math.Pi / 2 / math.Sqrt(b2), nil
}

// FissileSlab is a teaching-order fissile medium (one-group constants of
// the right magnitude for a fast metal system; not real weapons data,
// which the paper notes was always the controlled quantity — "the
// availability of data from full- and limited-scale nuclear tests is more
// crucial than the availability of HPC").
var FissileSlab = Material{Name: "fissile metal (one-group)", D: 1.2, SigmaA: 0.08, NuSigF: 0.16}

// Errors returned by the solver.
var (
	ErrConverge = errors.New("crit: power iteration did not converge")
	ErrBadMesh  = errors.New("crit: mesh must have at least 3 interior points")
)

// Result is a converged criticality calculation.
type Result struct {
	K          float64   // effective multiplication factor
	Flux       []float64 // fundamental-mode flux, normalized to max 1
	Iterations int
}

// Solve computes k-effective for a bare slab of the material with
// half-thickness a (cm) on a mesh of n interior points, by power
// iteration to the given tolerance on k.
func Solve(m Material, a float64, n int, tol float64, maxIter int) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if n < 3 {
		return Result{}, fmt.Errorf("%w: %d", ErrBadMesh, n)
	}
	if a <= 0 {
		return Result{}, fmt.Errorf("crit: non-positive half-thickness %v", a)
	}
	h := 2 * a / float64(n+1) // full slab width 2a, zero flux at both ends

	// Tridiagonal operator A = -D d²/dx² + Σa, constant coefficients.
	diag := 2*m.D/(h*h) + m.SigmaA
	off := -m.D / (h * h)

	phi := make([]float64, n)
	for i := range phi {
		phi[i] = 1
	}
	src := make([]float64, n)
	k := 1.0

	for it := 1; it <= maxIter; it++ {
		// Fission source from the current flux and k.
		for i := range src {
			src[i] = m.NuSigF * phi[i] / k
		}
		next, err := thomasConst(diag, off, src)
		if err != nil {
			return Result{}, err
		}
		// k update: ratio of new to old fission production.
		var prodNew, prodOld float64
		for i := range next {
			prodNew += m.NuSigF * next[i]
			prodOld += m.NuSigF * phi[i] / k
		}
		kNew := prodNew / prodOld
		copy(phi, next)
		if math.Abs(kNew-k) <= tol*kNew {
			normalize(phi)
			return Result{K: kNew, Flux: phi, Iterations: it}, nil
		}
		k = kNew
	}
	return Result{}, fmt.Errorf("%w after %d iterations (k≈%.6f)", ErrConverge, maxIter, k)
}

// thomasConst solves the constant-coefficient tridiagonal system
// (off, diag, off)·x = rhs by the Thomas algorithm.
func thomasConst(diag, off float64, rhs []float64) ([]float64, error) {
	n := len(rhs)
	c := make([]float64, n)
	d := make([]float64, n)
	if diag == 0 {
		return nil, errors.New("crit: singular tridiagonal system")
	}
	c[0] = off / diag
	d[0] = rhs[0] / diag
	for i := 1; i < n; i++ {
		denom := diag - off*c[i-1]
		if denom == 0 {
			return nil, errors.New("crit: singular tridiagonal system")
		}
		c[i] = off / denom
		d[i] = (rhs[i] - off*d[i-1]) / denom
	}
	x := make([]float64, n)
	x[n-1] = d[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = d[i] - c[i]*x[i+1]
	}
	return x, nil
}

// normalize scales the flux to unit maximum.
func normalize(phi []float64) {
	var max float64
	for _, v := range phi {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return
	}
	for i := range phi {
		phi[i] /= max
	}
}

// CriticalSearch finds the half-thickness at which the slab goes critical
// (k = 1) by bisection between lo and hi, to the given thickness
// tolerance.
func CriticalSearch(m Material, lo, hi, tol float64, mesh int) (float64, error) {
	kAt := func(a float64) (float64, error) {
		r, err := Solve(m, a, mesh, 1e-10, 10000)
		if err != nil {
			return 0, err
		}
		return r.K, nil
	}
	kLo, err := kAt(lo)
	if err != nil {
		return 0, err
	}
	kHi, err := kAt(hi)
	if err != nil {
		return 0, err
	}
	if (kLo-1)*(kHi-1) > 0 {
		return 0, fmt.Errorf("crit: k=1 not bracketed by [%v, %v] (k: %v, %v)", lo, hi, kLo, kHi)
	}
	for hi-lo > tol {
		mid := 0.5 * (lo + hi)
		kMid, err := kAt(mid)
		if err != nil {
			return 0, err
		}
		if (kMid-1)*(kLo-1) > 0 {
			lo, kLo = mid, kMid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}
