package sigproc

import "testing"

// Error-path coverage for the frequency-domain helpers.

func TestMatchedFilterErrors(t *testing.T) {
	if _, err := MatchedFilter(make([]complex128, 8), make([]complex128, 4)); err == nil {
		t.Error("length mismatch accepted")
	}
	// Non-power-of-two length propagates the FFT error.
	if _, err := MatchedFilter(make([]complex128, 6), make([]complex128, 6)); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, _, err := Detect(make([]complex128, 6), make([]complex128, 6)); err == nil {
		t.Error("Detect on bad length accepted")
	}
}

func TestDetectAllZeroSignal(t *testing.T) {
	// A zero scene and zero template: mean correlation is zero; the
	// significance must be reported as zero, not NaN.
	_, sig, err := Detect(make([]complex128, 16), make([]complex128, 16))
	if err != nil {
		t.Fatal(err)
	}
	if sig != 0 {
		t.Errorf("zero-signal significance %v", sig)
	}
}

func TestConvolveBadLengths(t *testing.T) {
	if _, err := Convolve(make([]complex128, 6), make([]complex128, 6)); err == nil {
		t.Error("non-power-of-two convolve accepted")
	}
}

func TestIFFTBadLength(t *testing.T) {
	if err := IFFT(make([]complex128, 3)); err == nil {
		t.Error("IFFT of length 3 accepted")
	}
}
