package sigproc

import (
	"errors"
	"math/rand"
	"testing"
)

func randomSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// TestPlanMatchesFreeFFT: the planned transform must be bit-identical to
// the free function — precomputing twiddles may not change a single bit.
func TestPlanMatchesFreeFFT(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64, 1024} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Size() != n {
			t.Fatalf("Size() = %d, want %d", p.Size(), n)
		}
		free := randomSignal(n, int64(n))
		planned := append([]complex128(nil), free...)
		if err := FFT(free); err != nil {
			t.Fatal(err)
		}
		if err := p.FFT(planned); err != nil {
			t.Fatal(err)
		}
		for i := range free {
			if free[i] != planned[i] {
				t.Fatalf("n=%d: FFT bin %d differs: %v vs %v", n, i, free[i], planned[i])
			}
		}
		if err := IFFT(free); err != nil {
			t.Fatal(err)
		}
		if err := p.IFFT(planned); err != nil {
			t.Fatal(err)
		}
		for i := range free {
			if free[i] != planned[i] {
				t.Fatalf("n=%d: IFFT sample %d differs", n, i)
			}
		}
	}
}

// TestPlanMatchesFreeConvolveAndFilter: the scratch-reusing pipelines must
// reproduce the allocating free functions bit for bit, including on reuse
// (stale scratch contents must never leak into a later call).
func TestPlanMatchesFreeConvolveAndFilter(t *testing.T) {
	const n = 256
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		a := randomSignal(n, int64(10+rep))
		b := randomSignal(n, int64(20+rep))
		wantConv, err := Convolve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		gotConv := make([]complex128, n)
		if err := p.Convolve(gotConv, a, b); err != nil {
			t.Fatal(err)
		}
		for i := range wantConv {
			if wantConv[i] != gotConv[i] {
				t.Fatalf("rep %d: convolution sample %d differs", rep, i)
			}
		}
		wantCorr, err := MatchedFilter(a, b)
		if err != nil {
			t.Fatal(err)
		}
		gotCorr := make([]float64, n)
		if err := p.MatchedFilter(gotCorr, a, b); err != nil {
			t.Fatal(err)
		}
		for i := range wantCorr {
			if wantCorr[i] != gotCorr[i] {
				t.Fatalf("rep %d: correlation lag %d differs", rep, i)
			}
		}
		wantLag, wantSig, err := Detect(a, b)
		if err != nil {
			t.Fatal(err)
		}
		gotLag, gotSig, err := p.Detect(gotCorr, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if gotLag != wantLag || gotSig != wantSig {
			t.Fatalf("rep %d: Detect (%d, %v), want (%d, %v)", rep, gotLag, gotSig, wantLag, wantSig)
		}
	}
}

// TestPlanAliasedConvolve: dst may alias an input.
func TestPlanAliasedConvolve(t *testing.T) {
	const n = 64
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	a := randomSignal(n, 3)
	b := randomSignal(n, 4)
	want, err := Convolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Convolve(a, a, b); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != a[i] {
			t.Fatalf("aliased convolution sample %d differs", i)
		}
	}
}

// TestPlanErrors covers construction and length-mismatch failures.
func TestPlanErrors(t *testing.T) {
	for _, n := range []int{0, 3, 100} {
		if _, err := NewPlan(n); !errors.Is(err, ErrLength) {
			t.Errorf("NewPlan(%d): err = %v, want ErrLength", n, err)
		}
	}
	p, err := NewPlan(16)
	if err != nil {
		t.Fatal(err)
	}
	wrong := make([]complex128, 8)
	right := make([]complex128, 16)
	if err := p.FFT(wrong); err == nil {
		t.Error("FFT accepted wrong length")
	}
	if err := p.IFFT(wrong); err == nil {
		t.Error("IFFT accepted wrong length")
	}
	if err := p.Convolve(make([]complex128, 16), wrong, right); err == nil {
		t.Error("Convolve accepted wrong a length")
	}
	if err := p.Convolve(make([]complex128, 8), right, right); err == nil {
		t.Error("Convolve accepted short dst")
	}
	if err := p.MatchedFilter(make([]float64, 16), wrong, right); err == nil {
		t.Error("MatchedFilter accepted wrong signal length")
	}
	if err := p.MatchedFilter(make([]float64, 8), right, right); err == nil {
		t.Error("MatchedFilter accepted short dst")
	}
}

// TestPlanSteadyStateAllocs: after construction, the planned detection
// chain must not allocate.
func TestPlanSteadyStateAllocs(t *testing.T) {
	const n = 512
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	signal := randomSignal(n, 7)
	template := randomSignal(n, 8)
	corr := make([]float64, n)
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := p.Detect(corr, signal, template); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("planned Detect allocates %v times per run, want 0", allocs)
	}
}
