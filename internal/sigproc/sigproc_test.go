package sigproc

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func almostEqualC(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func TestFFTLengthGuard(t *testing.T) {
	for _, n := range []int{0, 3, 5, 6, 7, 12} {
		if err := FFT(make([]complex128, n)); !errors.Is(err, ErrLength) {
			t.Errorf("length %d: %v", n, err)
		}
	}
	if err := FFT(make([]complex128, 1)); err != nil {
		t.Errorf("length 1: %v", err)
	}
}

func TestFFTImpulse(t *testing.T) {
	// δ[0] transforms to all ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if !almostEqualC(v, 1, 1e-12) {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A pure complex exponential of frequency k concentrates in bin k.
	const n, k = 64, 5
	x := make([]complex128, n)
	for i := range x {
		phase := 2 * math.Pi * k * float64(i) / n
		x[i] = cmplx.Exp(complex(0, phase))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		want := complex(0, 0)
		if i == k {
			want = complex(n, 0)
		}
		if !almostEqualC(v, want, 1e-9) {
			t.Errorf("bin %d = %v, want %v", i, v, want)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 256
	x := make([]complex128, n)
	var timeE float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var freqE float64
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-9*timeE {
		t.Errorf("Parseval violated: time %v, freq/n %v", timeE, freqE/float64(n))
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := make([]complex128, 128)
	orig := make([]complex128, len(x))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = x[i]
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEqualC(x[i], orig[i], 1e-10) {
			t.Fatalf("round trip failed at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestConvolveDelta(t *testing.T) {
	// Convolution with a shifted delta shifts the signal.
	a := []complex128{1, 2, 3, 4, 0, 0, 0, 0}
	d := make([]complex128, 8)
	d[2] = 1
	got, err := Convolve(a, d)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{0, 0, 1, 2, 3, 4, 0, 0}
	for i := range want {
		if !almostEqualC(got[i], want[i], 1e-10) {
			t.Errorf("conv[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := Convolve(a, d[:4]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestFFTFlop(t *testing.T) {
	if FFTFlop(1024) != 5*1024*10 {
		t.Errorf("FFTFlop(1024) = %v", FFTFlop(1024))
	}
	if FFTFlop(1) != 0 || FFTFlop(0) != 0 {
		t.Error("degenerate FFTFlop")
	}
}

func TestDetectFindsEmbeddedTarget(t *testing.T) {
	const n, lag = 512, 137
	rng := rand.New(rand.NewSource(11))
	template := make([]complex128, n)
	for i := 0; i < 32; i++ { // a 32-sample chirp signature
		template[i] = cmplx.Exp(complex(0, 0.05*float64(i*i))) * complex(1+0.1*rng.Float64(), 0)
	}
	scene := SyntheticScene(template, lag, 3.0, 42)
	gotLag, sig, err := Detect(scene, template)
	if err != nil {
		t.Fatal(err)
	}
	if gotLag != lag {
		t.Errorf("detected lag %d, want %d (significance %.1f)", gotLag, lag, sig)
	}
	if sig < 3 {
		t.Errorf("significance %.2f too low for a 3σ target", sig)
	}
}

func TestDetectNoTargetIsInsignificant(t *testing.T) {
	const n = 512
	template := make([]complex128, n)
	for i := 0; i < 32; i++ {
		template[i] = complex(1, 0)
	}
	scene := SyntheticScene(template, 0, 0, 99) // amplitude 0: clutter only
	_, sig, err := Detect(scene, template)
	if err != nil {
		t.Fatal(err)
	}
	if sig > 6 {
		t.Errorf("clutter-only significance %.2f; false alarm", sig)
	}
}

// TestSIRSTBudget reproduces the paper's deployed-SIRST numbers: ≈6,500
// Mflops sustained, ≈13,000 Mtops.
func TestSIRSTBudget(t *testing.T) {
	mf := SIRST.FlopPerSecond() / 1e6
	if mf < 5500 || mf > 7500 {
		t.Errorf("SIRST sustained demand %.0f Mflops, want ≈6,500", mf)
	}
	mtops := float64(SIRST.RequiredMtops())
	if mtops < 11000 || mtops > 15000 {
		t.Errorf("SIRST requirement %.0f Mtops, want ≈13,000", mtops)
	}
}

// TestMercuryDegradedMode: the 7,400-Mtops Mercury "might be minimally
// sufficient" — it sustains the sensor only below full frame rate.
func TestMercuryDegradedMode(t *testing.T) {
	full := SIRST.FrameHz
	rate, err := SIRST.MaxFrameRate(7400)
	if err != nil {
		t.Fatal(err)
	}
	if rate >= full {
		t.Errorf("Mercury-class machine sustains full rate (%.1f ≥ %.1f); should be degraded", rate, full)
	}
	if rate < 0.3*full {
		t.Errorf("Mercury-class rate %.1f Hz too low to be 'minimally sufficient'", rate)
	}
}

// TestALERTRunsOnWorkstations: the launch-warning feed fits the Onyx class
// (300–1,700 Mtops), which is why ALERT needed no supercomputer.
func TestALERTRunsOnWorkstations(t *testing.T) {
	mtops := float64(ALERTFeed.RequiredMtops())
	if mtops > 1700 {
		t.Errorf("ALERT feed needs %.0f Mtops; paper ran it on Onyx servers", mtops)
	}
	if mtops < 20 {
		t.Errorf("ALERT feed %.0f Mtops implausibly small", mtops)
	}
}

func TestSensorValidateAndErrors(t *testing.T) {
	bad := Sensor{Name: "x"}
	if err := bad.Validate(); err == nil {
		t.Error("invalid sensor accepted")
	}
	if _, err := bad.MaxFrameRate(100); err == nil {
		t.Error("MaxFrameRate on invalid sensor accepted")
	}
	if _, err := SIRST.MaxFrameRate(0); !errors.Is(err, ErrBudget) {
		t.Errorf("zero budget: %v", err)
	}
}

// TestFrameRateScalesLinearly: double the computing, double the
// sustainable frame rate.
func TestFrameRateScalesLinearly(t *testing.T) {
	r1, err := SIRST.MaxFrameRate(6500)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SIRST.MaxFrameRate(13000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2/r1-2) > 1e-9 {
		t.Errorf("frame rate did not scale linearly: %v vs %v", r1, r2)
	}
}

// TestSyntheticSceneRNGSameSeedIsByteIdentical: scene synthesis is a
// function of its generator state alone.
func TestSyntheticSceneRNGSameSeedIsByteIdentical(t *testing.T) {
	tpl := make([]complex128, 64)
	tpl[0], tpl[7] = complex(1, 0), complex(0, 1)
	a := SyntheticSceneRNG(tpl, 9, 4, rand.New(rand.NewSource(21)))
	b := SyntheticSceneRNG(tpl, 9, 4, rand.New(rand.NewSource(21)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := SyntheticScene(tpl, 9, 4, 21)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("SyntheticScene(seed) != SyntheticSceneRNG(NewSource(seed)) at %d", i)
		}
	}
}
