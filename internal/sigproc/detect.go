package sigproc

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/units"
)

// MatchedFilter correlates a signal against a known template via the
// frequency domain and returns the correlation magnitude at each lag —
// the core of "target detection, identification, and tracking" and of
// automatic-target-recognition template matching.
func MatchedFilter(signal, template []complex128) ([]float64, error) {
	if len(signal) != len(template) {
		return nil, fmt.Errorf("sigproc: filter lengths %d and %d", len(signal), len(template))
	}
	fs := make([]complex128, len(signal))
	ft := make([]complex128, len(template))
	copy(fs, signal)
	copy(ft, template)
	if err := FFT(fs); err != nil {
		return nil, err
	}
	if err := FFT(ft); err != nil {
		return nil, err
	}
	for i := range fs {
		fs[i] *= cmplx.Conj(ft[i])
	}
	if err := IFFT(fs); err != nil {
		return nil, err
	}
	out := make([]float64, len(fs))
	for i, v := range fs {
		out[i] = cmplx.Abs(v)
	}
	return out, nil
}

// Detect runs the matched filter and reports the lag of the correlation
// peak and its significance: the ratio of the peak to the mean magnitude.
func Detect(signal, template []complex128) (lag int, significance float64, err error) {
	corr, err := MatchedFilter(signal, template)
	if err != nil {
		return 0, 0, err
	}
	var sum, peak float64
	for i, v := range corr {
		sum += v
		if v > peak {
			peak, lag = v, i
		}
	}
	mean := sum / float64(len(corr))
	if mean == 0 {
		return lag, 0, nil
	}
	return lag, peak / mean, nil
}

// SyntheticScene builds a clutter-plus-target test signal: the template
// embedded at the given lag with the given amplitude inside Gaussian
// clutter of unit power. Deterministic in seed.
func SyntheticScene(template []complex128, lag int, amplitude float64, seed int64) []complex128 {
	return SyntheticSceneRNG(template, lag, amplitude, rand.New(rand.NewSource(seed)))
}

// SyntheticSceneRNG is SyntheticScene drawing clutter from the caller's
// explicitly seeded generator, for callers composing several stochastic
// stages under one seed.
func SyntheticSceneRNG(template []complex128, lag int, amplitude float64, rng *rand.Rand) []complex128 {
	n := len(template)
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	for i, tv := range template {
		out[(lag+i)%n] += complex(amplitude, 0) * tv
	}
	return out
}

// ---- The SIRST real-time budget --------------------------------------------

// mtopsPerSustainedMflop is the paper's own SIRST conversion: "about 6,500
// Mflops of sustained computational power (about 13,000 Mtops)".
const mtopsPerSustainedMflop = 13000.0 / 6500.0

// Sensor is a staring or scanning sensor whose stream must be processed
// in real time.
type Sensor struct {
	Name       string
	Pixels     int     // pixels per frame
	FrameHz    float64 // frames per second
	BandsOrOps float64 // processing passes per pixel per frame (detection chains)
}

// Validate reports configuration errors.
func (s Sensor) Validate() error {
	if s.Pixels < 1 || s.FrameHz <= 0 || s.BandsOrOps <= 0 {
		return fmt.Errorf("sigproc: invalid sensor %+v", s)
	}
	return nil
}

// FlopPerSecond returns the sustained rate the sensor's detection chain
// demands: per frame, each processing pass runs FFT-based filtering over
// the frame (modeled as row-wise FFTs of length √Pixels, forward and
// inverse, plus the spectral multiply), at the frame rate.
func (s Sensor) FlopPerSecond() float64 {
	n := float64(s.Pixels)
	rowLen := int(math.Round(math.Sqrt(n)))
	// Per pass: a forward FFT, a spectral multiply, and an inverse FFT of
	// every row (3 transforms' worth across rowLen rows), plus pointwise
	// thresholding work over the frame.
	perPass := 3*FFTFlop(rowLen)*float64(rowLen) + 8*n
	return perPass * s.BandsOrOps * s.FrameHz
}

// RequiredMtops converts the sensor's sustained demand to the CTP rating
// of the machine class it needs.
func (s Sensor) RequiredMtops() units.Mtops {
	return units.Mtops(s.FlopPerSecond() / 1e6 * mtopsPerSustainedMflop)
}

// ErrBudget is returned when no frame rate satisfies a budget.
var ErrBudget = errors.New("sigproc: no feasible frame rate")

// MaxFrameRate inverts the budget: the highest frame rate the sensor can
// sustain on a machine of the given rating.
func (s Sensor) MaxFrameRate(available units.Mtops) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if available <= 0 {
		return 0, fmt.Errorf("%w: %v available", ErrBudget, available)
	}
	perSecondAtOneHz := s.FlopPerSecond() / s.FrameHz
	sustainable := float64(available) / mtopsPerSustainedMflop * 1e6
	return sustainable / perSecondAtOneHz, nil
}

// SIRST is the shipboard infrared search-and-track configuration of the
// paper: a wide-field staring array scanned fast enough to catch a
// sea-skimming missile ("skims the water's surface at high speed while
// rapidly maneuvering"), with multi-band detection chains. Calibrated to
// the stated 6,500 Mflops sustained / 13,000 Mtops deployed requirement.
var SIRST = Sensor{
	Name:       "SIRST (shipboard IR search and track)",
	Pixels:     1 << 20, // 1024×1024 staring array
	FrameHz:    30,
	BandsOrOps: 1.25,
}

// ALERTFeed is the theater-missile-warning feed: far fewer pixels at a
// lower rate — the reason the ALERT suite ran on Onyx-class servers
// (1,700 Mtops), not supercomputers.
var ALERTFeed = Sensor{
	Name:       "ALERT (DSP launch-detection feed)",
	Pixels:     1 << 16, // 256×256 focal plane
	FrameHz:    10,
	BandsOrOps: 1.0,
}
