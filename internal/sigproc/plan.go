package sigproc

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Plan is a reusable transform context for one power-of-two length: the
// per-stage twiddle factors computed once at construction, plus the
// frequency-domain scratch that Convolve and MatchedFilter previously
// allocated on every call. A real-time detection chain — SIRST processes
// the same 1024-point rows thirty times a second — builds one Plan and
// reuses it for every frame, paying no transcendental evaluations and no
// scratch allocations in steady state.
//
// Every Plan method computes bit-identical results to the free function of
// the same name: the twiddles are evaluated by the exact expression the
// in-place transform uses, and the butterfly arithmetic is unchanged.
// A Plan is not safe for concurrent use; build one per goroutine.
type Plan struct {
	n  int
	tw [][]complex128 // tw[s][k]: stage s (size 2<<s), twiddle k
	fa []complex128   // frequency-domain scratch
	fb []complex128
}

// NewPlan builds a Plan for transforms of length n, which must be a power
// of two.
func NewPlan(n int) (*Plan, error) {
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("%w: %d", ErrLength, n)
	}
	p := &Plan{
		n:  n,
		fa: make([]complex128, n),
		fb: make([]complex128, n),
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		row := make([]complex128, half)
		for k := 0; k < half; k++ {
			row[k] = cmplx.Exp(complex(0, step*float64(k)))
		}
		p.tw = append(p.tw, row)
	}
	return p, nil
}

// Size returns the transform length the plan was built for.
func (p *Plan) Size() int { return p.n }

// check validates an input length against the plan.
func (p *Plan) check(n int) error {
	if n != p.n {
		return fmt.Errorf("sigproc: plan for length %d given length %d", p.n, n)
	}
	return nil
}

// FFT computes the in-place forward transform of x using the precomputed
// twiddles; len(x) must equal the plan size.
func (p *Plan) FFT(x []complex128) error {
	if err := p.check(len(x)); err != nil {
		return err
	}
	fft(x, p.tw)
	return nil
}

// IFFT computes the in-place inverse transform of x.
func (p *Plan) IFFT(x []complex128) error {
	if err := p.check(len(x)); err != nil {
		return err
	}
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	fft(x, p.tw)
	scale := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * scale
	}
	return nil
}

// Convolve writes the circular convolution of a and b into dst, all of the
// plan's length. dst may alias a or b. Unlike the free Convolve it
// allocates nothing: the frequency-domain intermediates live in the plan.
func (p *Plan) Convolve(dst, a, b []complex128) error {
	if err := p.check(len(a)); err != nil {
		return err
	}
	if len(b) != p.n || len(dst) != p.n {
		return fmt.Errorf("sigproc: convolve lengths %d, %d, %d for plan of %d",
			len(dst), len(a), len(b), p.n)
	}
	copy(p.fa, a)
	copy(p.fb, b)
	fft(p.fa, p.tw)
	fft(p.fb, p.tw)
	for i := range p.fa {
		p.fa[i] *= p.fb[i]
	}
	if err := p.IFFT(p.fa); err != nil {
		return err
	}
	copy(dst, p.fa)
	return nil
}

// MatchedFilter writes the correlation magnitude of signal against
// template at each lag into dst, allocation-free.
func (p *Plan) MatchedFilter(dst []float64, signal, template []complex128) error {
	if err := p.check(len(signal)); err != nil {
		return err
	}
	if len(template) != p.n || len(dst) != p.n {
		return fmt.Errorf("sigproc: filter lengths %d, %d into %d for plan of %d",
			len(signal), len(template), len(dst), p.n)
	}
	copy(p.fa, signal)
	copy(p.fb, template)
	fft(p.fa, p.tw)
	fft(p.fb, p.tw)
	for i := range p.fa {
		p.fa[i] *= cmplx.Conj(p.fb[i])
	}
	if err := p.IFFT(p.fa); err != nil {
		return err
	}
	for i, v := range p.fa {
		dst[i] = cmplx.Abs(v)
	}
	return nil
}

// Detect runs the planned matched filter and reports the correlation peak's
// lag and significance, exactly as the free Detect does. corr is the
// caller's length-n scratch for the correlation magnitudes.
func (p *Plan) Detect(corr []float64, signal, template []complex128) (lag int, significance float64, err error) {
	if err := p.MatchedFilter(corr, signal, template); err != nil {
		return 0, 0, err
	}
	var sum, peak float64
	for i, v := range corr {
		sum += v
		if v > peak {
			peak, lag = v, i
		}
	}
	mean := sum / float64(len(corr))
	if mean == 0 {
		return lag, 0, nil
	}
	return lag, peak / mean, nil
}
