// Package sigproc provides the signal-and-image-processing substrate
// behind the paper's surveillance and air-defense applications: a
// from-scratch radix-2 FFT, matched-filter detection in clutter, and the
// real-time processing budget model that produces the SIRST numbers — the
// shipboard infrared search-and-track system whose deployed form was
// "likely to require a computer capable of delivering about 6,500 Mflops
// of sustained computational power (about 13,000 Mtops)" against
// sea-skimming anti-ship cruise missiles.
//
// SIP "is often performed by special-purpose devices and processors in
// embedded, deployable systems" under size, weight, and power constraints
// that rule out clusters — which is why these applications anchor the
// military-operations group above the uncontrollability frontier.
package sigproc

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// ErrLength is returned when an FFT input is not a power of two.
var ErrLength = errors.New("sigproc: length must be a power of two")

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x, whose length must be a power of two.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("%w: %d", ErrLength, n)
	}
	fft(x, nil)
	return nil
}

// fft runs the bit-reversal permutation and butterfly stages over x, whose
// length is already validated as a power of two. With tw == nil each
// twiddle is computed on the fly; otherwise tw[s][k] supplies stage s's
// k-th twiddle. The butterflies within a stage touch disjoint index pairs,
// so iterating k before start (amortizing one twiddle across all blocks)
// performs exactly the same arithmetic as the historical start-major order
// and the transform stays bit-identical either way.
func fft(x []complex128, tw [][]complex128) {
	n := len(x)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	s := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		var row []complex128
		if tw != nil {
			row = tw[s]
			s++
		}
		for k := 0; k < half; k++ {
			var w complex128
			if row != nil {
				w = row[k]
			} else {
				w = cmplx.Exp(complex(0, step*float64(k)))
			}
			for start := 0; start < n; start += size {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// IFFT computes the inverse transform of x in place.
func IFFT(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	scale := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * scale
	}
	return nil
}

// FFTFlop returns the conventional operation count of one length-n
// complex FFT: 5·n·log₂(n) real floating-point operations.
func FFTFlop(n int) float64 {
	if n <= 1 {
		return 0
	}
	return 5 * float64(n) * math.Log2(float64(n))
}

// Convolve returns the circular convolution of a and b (equal power-of-two
// lengths) via the frequency domain.
func Convolve(a, b []complex128) ([]complex128, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("sigproc: convolve lengths %d and %d", len(a), len(b))
	}
	fa := make([]complex128, len(a))
	fb := make([]complex128, len(b))
	copy(fa, a)
	copy(fb, b)
	if err := FFT(fa); err != nil {
		return nil, err
	}
	if err := FFT(fb); err != nil {
		return nil, err
	}
	for i := range fa {
		fa[i] *= fb[i]
	}
	if err := IFFT(fa); err != nil {
		return nil, err
	}
	return fa, nil
}
