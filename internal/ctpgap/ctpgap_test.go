package ctpgap

import (
	"strings"
	"testing"

	"repro/internal/simmach"
	"repro/internal/workload"
)

func analyze(t *testing.T, procs int) []Row {
	t.Helper()
	rows, err := Analyze(procs)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestAnalyzeShape(t *testing.T) {
	rows := analyze(t, 16)
	// 6 machines × 5 workloads.
	if len(rows) != 30 {
		t.Fatalf("%d rows, want 30", len(rows))
	}
	for _, r := range rows {
		if r.Rated <= 0 {
			t.Errorf("%s: non-positive rating", r.Machine)
		}
		if r.Sustained < 0 || r.PerMtops < 0 {
			t.Errorf("%s/%s: negative measurement", r.Machine, r.Workload)
		}
		if r.String() == "" {
			t.Error("empty row string")
		}
	}
}

// TestCTPBlindness: on communication-bound work, deliverable performance
// per rated Mtops spreads by an order of magnitude across the spectrum —
// the Chapter 6 indictment of the metric.
func TestCTPBlindness(t *testing.T) {
	spreads := Spreads(analyze(t, 16))
	if len(spreads) != 5 {
		t.Fatalf("%d spreads", len(spreads))
	}
	bySpread := map[string]float64{}
	for _, s := range spreads {
		bySpread[s.Workload] = s.Ratio
	}
	for w, r := range bySpread {
		if r < 4 {
			t.Errorf("%s spread only %.1f×; CTP blindness should exceed 4× everywhere", w, r)
		}
	}
	// The blindness runs in both directions. On embarrassingly parallel
	// work the best deliverable-per-rated machine is a cluster — the CTP
	// rules credit a loosely coupled pile with almost nothing, yet it
	// delivers nearly everything ("no approved way of computing" a
	// cluster's CTP). On all-to-all work the worst is a cluster: its low
	// rating still overstates what it can do.
	for _, s := range spreads {
		switch s.Workload {
		case "brute-force key search":
			if !strings.Contains(s.Best.Machine, "cluster") {
				t.Errorf("key search best per-Mtops machine = %s; expected a cluster", s.Best.Machine)
			}
		case "all-to-all transpose (FFT)":
			if !strings.Contains(s.Worst.Machine, "Ethernet") {
				t.Errorf("transpose worst per-Mtops machine = %s; expected the Ethernet cluster", s.Worst.Machine)
			}
		}
	}
}

// TestSpreadsSorted: most CTP-blind workload first.
func TestSpreadsSorted(t *testing.T) {
	spreads := Spreads(analyze(t, 16))
	for i := 1; i < len(spreads); i++ {
		if spreads[i].Ratio > spreads[i-1].Ratio {
			t.Errorf("spreads not sorted at %s", spreads[i].Workload)
		}
	}
}

// TestEqualCTPDifferentDelivery constructs two machines the CTP rules rate
// nearly identically — a 4-way SMP and a 31-node ATM cluster — and shows
// their deliverable performance differs severalfold in opposite directions
// by workload. A threshold drawn between two such systems "is not likely
// to reflect differences in the real utility of such systems".
func TestEqualCTPDifferentDelivery(t *testing.T) {
	// The paper's own pair: a single workstation and a 16-node Ethernet
	// farm of identical workstations. The CTP rules rate the farm almost
	// exactly like one node (the coupling factor of a shared 10 Mb/s
	// medium is negligible), yet on coarse work it delivers an order of
	// magnitude more, and on all-to-all work far less than even the one
	// workstation, which at least never waits on a network.
	single := simmach.MPP("single workstation", 1, 50, simmach.NetEthernet)
	farm := simmach.Cluster("Ethernet farm (16)", 16, 50, simmach.NetEthernet, true)

	singleRated, err := rate(single)
	if err != nil {
		t.Fatal(err)
	}
	farmRated, err := rate(farm)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(farmRated) / float64(singleRated); ratio < 0.95 || ratio > 1.10 {
		t.Fatalf("pair not equally rated: single %v vs farm %v", singleRated, farmRated)
	}

	deliver := func(m simmach.Machine, w simmach.Workload) float64 {
		r, err := simmach.Run(m, w)
		if err != nil {
			t.Fatal(err)
		}
		return w.TotalMflop() / r.Seconds
	}
	ks := workload.DefaultKeySearch()
	tr := workload.DefaultTranspose()

	if f, s := deliver(farm, ks), deliver(single, ks); f < 5*s {
		t.Errorf("equal CTP: farm key-search delivery %.0f not ≫ single's %.0f", f, s)
	}
	if s, f := deliver(single, tr), deliver(farm, tr); s < 1.5*f {
		t.Errorf("equal CTP: single-node transpose delivery %.0f not ≫ farm's %.0f", s, f)
	}
}

func TestRatingsOrderedByCoupling(t *testing.T) {
	rows := analyze(t, 16)
	ratings := map[string]float64{}
	for _, r := range rows {
		ratings[r.Machine] = float64(r.Rated)
	}
	if ratings["SMP (shared bus)"] <= ratings["ad hoc cluster (Ethernet)"] {
		t.Error("SMP should out-rate the Ethernet cluster under the CTP rules")
	}
}
