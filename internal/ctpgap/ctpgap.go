// Package ctpgap quantifies the complaint that runs through the paper's
// Chapter 6: "the CTP metric is too imprecise to adequately distinguish
// between the deliverable performance of systems" — actual performance
// depends on architecture, application, and algorithm, none of which the
// hardware-only metric sees.
//
// The package pairs each machine of the Table 5 spectrum with its CTP
// rating (computed by the same rules the regime used) and its simulated
// sustained throughput on each workload of the granularity suite. The
// resulting "deliverable Mflops per rated Mtops" matrix spreads by more
// than an order of magnitude across the spectrum — two systems with equal
// CTP can differ tenfold in what they deliver on a weather stencil, which
// is exactly why "thresholds within the envelope that distinguish between
// systems with roughly comparable CTPs are not likely to reflect
// differences in the real utility of such systems".
package ctpgap

import (
	"fmt"
	"sort"

	"repro/internal/ctp"
	"repro/internal/simmach"
	"repro/internal/units"
	"repro/internal/workload"
)

// Row is one machine×workload measurement.
type Row struct {
	Machine   string
	Workload  string
	Rated     units.Mtops // CTP rating of the configuration
	Sustained float64     // simulated deliverable Mflops
	PerMtops  float64     // Sustained / Rated: deliverable Mflops per rated Mtops
}

// String renders the row.
func (r Row) String() string {
	return fmt.Sprintf("%s on %s: rated %s, sustains %.1f Mflops (%.3f Mflops/Mtops)",
		r.Workload, r.Machine, r.Rated, r.Sustained, r.PerMtops)
}

// node is the simulated fleet's common processor expressed as a CTP
// element: a 50 Mflops 64-bit engine, so rated TP = 50 Mtops.
var node = ctp.Element{
	Name:  "fleet node (50 Mflops)",
	Clock: 50,
	Units: []ctp.FunctionalUnit{{Kind: ctp.FloatingPoint, Bits: 64, OpsPerCycle: 1}},
}

// rate computes the CTP rating of a simulated machine configuration by
// mapping its coupling class onto the rating rules.
func rate(m simmach.Machine) (units.Mtops, error) {
	if m.SharedMemory {
		return ctp.SMP(m.Name, node, m.Procs).CTP()
	}
	ic := ctp.Interconnect{Name: m.Net.Name, Bandwidth: m.Net.Bandwidth, Latency: m.Net.LatencyUs}
	if m.Net.Shared {
		// A shared medium's per-node share is what couples any one pair.
		ic.Bandwidth = m.Net.Bandwidth / float64(m.Procs)
	}
	return ctp.MPP(m.Name, node, m.Procs, ic).CTP()
}

// Analyze measures the fleet at the given processor count against the
// standard workload suite, running the simulations itself.
func Analyze(procs int) ([]Row, error) {
	fleet := simmach.Fleet(procs)
	suite := workload.Suite()
	results, err := simmach.Sweep(nil, fleet, suite)
	if err != nil {
		return nil, fmt.Errorf("ctpgap: %w", err)
	}
	return FromSweep(fleet, suite, results)
}

// FromSweep builds the gap matrix from an already-simulated machine ×
// workload sweep (machine-major, as simmach.Sweep returns it), so callers
// that share one sweep across several exhibits — the report layer
// memoizes exactly this — pay for the simulations once.
func FromSweep(fleet []simmach.Machine, suite []simmach.Workload, results []simmach.Result) ([]Row, error) {
	if len(results) != len(fleet)*len(suite) {
		return nil, fmt.Errorf("ctpgap: sweep has %d results for %d machines × %d workloads",
			len(results), len(fleet), len(suite))
	}
	var rows []Row
	for mi, m := range fleet {
		rated, err := rate(m)
		if err != nil {
			return nil, fmt.Errorf("ctpgap: rating %s: %w", m.Name, err)
		}
		for wi, w := range suite {
			res := results[mi*len(suite)+wi]
			sustained := 0.0
			if res.Seconds > 0 {
				sustained = w.TotalMflop() / res.Seconds
			}
			rows = append(rows, Row{
				Machine:   m.Name,
				Workload:  w.Name(),
				Rated:     rated,
				Sustained: sustained,
				PerMtops:  sustained / float64(rated),
			})
		}
	}
	return rows, nil
}

// Spread summarizes the metric's blindness for one workload: the ratio of
// the best to the worst deliverable-per-rated figure across the fleet.
type Spread struct {
	Workload string
	Best     Row
	Worst    Row
	Ratio    float64 // Best.PerMtops / Worst.PerMtops
}

// Spreads computes the per-workload spread of deliverable performance per
// rated Mtops, sorted by decreasing ratio (most CTP-blind workload first).
func Spreads(rows []Row) []Spread {
	byW := map[string][]Row{}
	for _, r := range rows {
		byW[r.Workload] = append(byW[r.Workload], r)
	}
	var out []Spread
	for w, rs := range byW {
		best, worst := rs[0], rs[0]
		for _, r := range rs[1:] {
			if r.PerMtops > best.PerMtops {
				best = r
			}
			if r.PerMtops < worst.PerMtops {
				worst = r
			}
		}
		s := Spread{Workload: w, Best: best, Worst: worst}
		if worst.PerMtops > 0 {
			s.Ratio = best.PerMtops / worst.PerMtops
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ratio > out[j].Ratio })
	return out
}
