package controllability

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/units"
)

func mustLookup(t *testing.T, name string) catalog.System {
	t.Helper()
	s, ok := catalog.Lookup(name)
	if !ok {
		t.Fatalf("catalog missing %q", name)
	}
	return s
}

func TestFactorScoresInRange(t *testing.T) {
	for _, s := range catalog.All() {
		f := Score(s)
		for name, v := range map[string]float64{
			"Size": f.Size, "Age": f.Age, "Scalability": f.Scalability,
			"InstalledBase": f.InstalledBase, "Channel": f.Channel, "EntryCost": f.EntryCost,
		} {
			if v < 0 || v > 1 {
				t.Errorf("%s: factor %s = %v out of [0,1]", s.Name, name, v)
			}
		}
		if idx := f.Index(); idx < 0 || idx > 1 {
			t.Errorf("%s: index %v out of [0,1]", s.Name, idx)
		}
	}
}

// TestPaperVerdicts checks the classification against the systems the
// paper names on each side of the line.
func TestPaperVerdicts(t *testing.T) {
	uncontrollable := []string{
		"Cray CS6400",      // "represent the most powerful uncontrollable systems available in mid-1995"
		"SGI Challenge XL", // ditto
		"SGI PowerChallenge XL",
		"Sun SPARCstation 10/30",
		"486 PC", "Pentium PC", "IBM PC-XT",
		"DEC AlphaServer 2100",
		"DEC AlphaServer 8400",
	}
	controllable := []string{
		"Cray C916", "Cray C90/8", "Cray Y-MP/2", "Cray T932",
		"Intel Paragon (328)", "Intel Paragon (352)", "Intel Paragon XP/S-MP (max)",
		"TMC CM-5 (256)", "Cray T3D (256)",
		"NEC SX-3/44",
	}
	for _, n := range uncontrollable {
		if s := mustLookup(t, n); !UncontrollableKind(s) {
			t.Errorf("%s classified controllable (index %.3f); paper says uncontrollable",
				n, Score(s).Index())
		}
	}
	for _, n := range controllable {
		if s := mustLookup(t, n); UncontrollableKind(s) {
			t.Errorf("%s classified uncontrollable (index %.3f); paper says controllable",
				n, Score(s).Index())
		}
	}
}

func TestClustersAlwaysUncontrollableKind(t *testing.T) {
	for _, s := range catalog.All() {
		if s.Class == catalog.AdHocCluster || s.Class == catalog.DedicatedCluster {
			if !UncontrollableKind(s) {
				t.Errorf("cluster %s not of uncontrollable kind", s.Name)
			}
		}
	}
}

func TestMaturationLag(t *testing.T) {
	cs := mustLookup(t, "Cray CS6400") // introduced 1993
	if UncontrollableAsOf(cs, 1994.0) {
		t.Error("CS6400 uncontrollable before its market matured")
	}
	if !UncontrollableAsOf(cs, 1995.0) {
		t.Error("CS6400 still controllable two years after introduction")
	}
}

func TestIndigenousUncontrollableImmediately(t *testing.T) {
	p, ok := catalog.Lookup("Param 9000/SS") // India, 1995
	if !ok {
		t.Fatal("missing Param 9000/SS")
	}
	if !UncontrollableAsOf(p, 1995.0) {
		t.Error("indigenous system not uncontrollable upon existence")
	}
	if UncontrollableAsOf(p, 1994.0) {
		t.Error("indigenous system uncontrollable before it exists")
	}
}

// TestHeadlineFrontier reproduces the paper's central quantitative finding:
//
//	"Our analysis produces a lower bound (mid-1995) of 4,000–5,000 Mtops —
//	 which is likely to rise to approximately 7,500 Mtops by late 1996 or
//	 1997 and exceed 16,000 Mtops before the end of the decade."
func TestHeadlineFrontier(t *testing.T) {
	mid95, sys95, ok := Frontier(1995.5, Options{})
	if !ok {
		t.Fatal("no frontier in 1995")
	}
	if mid95 < 4000 || mid95 > 5000 {
		t.Errorf("mid-1995 frontier = %v (%s), want 4,000–5,000 Mtops", mid95, sys95.Name)
	}

	f97, sys97, _ := Frontier(1997.2, Options{})
	if f97 < 7000 || f97 > 8000 {
		t.Errorf("early-1997 frontier = %v (%s), want ≈7,500 Mtops", f97, sys97.Name)
	}

	f99, sys99, _ := Frontier(1999.0, Options{})
	if f99 < 16000 {
		t.Errorf("1999 frontier = %v (%s), want >16,000 Mtops", f99, sys99.Name)
	}
}

// TestFrontierLate1996 pins the boundary of the "late 1996 or 1997"
// phrasing: by the end of 1996 the frontier is already past the mid-1995
// band, and ≈7,500 arrives no later than early 1997.
func TestFrontierLate1996(t *testing.T) {
	f, _, _ := Frontier(1996.9, Options{})
	if f < 5000 {
		t.Errorf("late-1996 frontier = %v, should exceed the mid-1995 band", f)
	}
	if f > 8000 {
		t.Errorf("late-1996 frontier = %v, implausibly high", f)
	}
}

func TestFrontierMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		x := 1985 + math.Mod(math.Abs(a), 15)
		y := 1985 + math.Mod(math.Abs(b), 15)
		if x > y {
			x, y = y, x
		}
		fx, _, okx := Frontier(x, Options{})
		fy, _, oky := Frontier(y, Options{})
		if !okx {
			return true // nothing yet at x; any later value is fine
		}
		return oky && fy >= fx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrontierBeforeAnything(t *testing.T) {
	if _, _, ok := Frontier(1970, Options{}); ok {
		t.Error("frontier exists before any system")
	}
}

func TestFrontierSeries(t *testing.T) {
	s := FrontierSeries(1990, 1999, 0.5, Options{})
	if len(s.Points) < 10 {
		t.Fatalf("series has %d points", len(s.Points))
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y < s.Points[i-1].Y {
			t.Errorf("frontier series decreasing at %v", s.Points[i].X)
		}
	}
}

// TestClusterOptionRaisesNothingFundamental: including clusters must never
// lower the frontier, and the paper's position implies the no-cluster
// frontier is the policy-relevant one.
func TestClusterOption(t *testing.T) {
	base, _, _ := Frontier(1995.5, Options{})
	with, _, _ := Frontier(1995.5, Options{IncludeClusters: true})
	if with < base {
		t.Errorf("including clusters lowered the frontier: %v < %v", with, base)
	}
}

// TestWesternOnlyFrontier: excluding indigenous systems must never raise
// the frontier, and in the 1990s the Western curve dominates (Figure 7's
// finding that U.S. uncontrollable systems eclipse non-Western projects).
func TestWesternOnlyFrontier(t *testing.T) {
	all, _, _ := Frontier(1995.5, Options{})
	west, _, _ := Frontier(1995.5, Options{ExcludeIndigenous: true})
	if west > all {
		t.Errorf("excluding indigenous systems raised the frontier: %v > %v", west, all)
	}
	if west != all {
		t.Errorf("mid-1995 frontier should be set by a Western system (Figure 7): west %v, all %v", west, all)
	}
}

func TestTable4(t *testing.T) {
	rows := Table4()
	if len(rows) < 12 {
		t.Fatalf("Table 4 has %d rows", len(rows))
	}
	// Ordered by descending index.
	for i := 1; i < len(rows); i++ {
		if rows[i].Factors.Index() > rows[i-1].Factors.Index() {
			t.Errorf("Table 4 not sorted at row %d", i)
		}
	}
	// The table must contain both verdicts.
	var unc, con bool
	for _, r := range rows {
		if r.Verdict {
			unc = true
		} else {
			con = true
		}
	}
	if !unc || !con {
		t.Error("Table 4 should span controllable and uncontrollable systems")
	}
}

func TestScoreMonotoneInInstalledBase(t *testing.T) {
	s := mustLookup(t, "Cray CS6400")
	small, big := s, s
	small.Installed = 10
	big.Installed = 100000
	if Score(small).InstalledBase >= Score(big).InstalledBase {
		t.Error("installed-base factor not monotone")
	}
}

func TestEntryCostScoreMonotone(t *testing.T) {
	prices := []float64{5e3, 50e3, 150e3, 400e3, 800e3, 5e6}
	prev := math.Inf(1)
	for _, p := range prices {
		sc := entryCostScore(units.USD(p))
		if sc > prev {
			t.Errorf("entry cost score rises with price at %v", p)
		}
		prev = sc
	}
}

func TestNeutralScoresForUnknownData(t *testing.T) {
	if got := ageScore(0); got != 0.5 {
		t.Errorf("unknown cycle score %v, want 0.5", got)
	}
	if got := entryCostScore(0); got != 0.5 {
		t.Errorf("unknown price score %v, want 0.5", got)
	}
	if got := installedBaseScore(0); got != 0 {
		t.Errorf("zero installed score %v, want 0", got)
	}
}

func TestFactorsString(t *testing.T) {
	f := Score(mustLookup(t, "Cray C916"))
	if f.String() == "" {
		t.Error("empty Factors.String")
	}
}
