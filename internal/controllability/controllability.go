// Package controllability implements Chapter 3's lower-bound analysis: a
// multi-factor scoring model of how controllable a computer system is, the
// two-year market-maturation lag that converts product introductions into
// uncontrollability dates, and the resulting uncontrollability frontier —
// the highest CTP whose diffusion the export-control system can no longer
// prevent as of a given date.
//
// The paper identifies six qualities that "affect the ability of export
// control authorities, in concert with vendors, to track the location of a
// given computer system, monitor its operations, and enforce appropriate
// use": size, age, scalability, number of units in the field, dealership
// network, and cost of entry-level systems. Controllability "is a
// continuous function, not a binary condition"; the model scores each
// factor on [0,1] (1 = works against control) and classifies a product
// line as uncontrollable-in-kind when the mean score crosses a fixed
// index. A product of uncontrollable kind becomes actually uncontrollable
// MaturationLag years after introduction, "approximately two years after
// they are first shipped", when the installed base has built and a
// secondary market has emerged.
//
// The frontier at time t is the larger of (a) the maximum CTP over
// uncontrollable-in-kind supplier-state systems introduced at least
// MaturationLag years before t and (b) the maximum CTP over indigenous
// systems of the countries of concern available by t — "the greater of the
// lower technology curves". Workstation clusters are excluded by default,
// per the paper's finding that clusters "should not by themselves be used
// to justify a lower bound".
package controllability

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/catalog"
	"repro/internal/trend"
	"repro/internal/units"
)

// MaturationLag is the time, in years, between a product's introduction
// and the point at which its installed base and secondary market defeat
// tracking: "currently no more than two years from product introduction".
const MaturationLag = 2.0

// UncontrollableIndex is the composite-score level at or above which a
// product line is of uncontrollable kind. The value is calibrated so that
// the paper's named examples fall on the right sides: the Cray CS6400 and
// SGI Challenge lines (and everything below them in the workstation
// market) are uncontrollable; direct-sale, room-size vector and MPP
// systems (Cray C916, Paragon, CM-5) are controllable.
const UncontrollableIndex = 0.55

// Factors holds the six per-factor scores, each in [0,1] with 1 meaning
// the factor defeats control.
type Factors struct {
	Size          float64 // small and movable vs. room-size infrastructure
	Age           float64 // short product cycles → churn and secondary markets
	Scalability   float64 // field upgrades without vendor presence
	InstalledBase float64 // number of units in the field
	Channel       float64 // dealer/VAR networks vs. vendor-direct oversight
	EntryCost     float64 // departmental-budget entry prices widen the market
}

// Index is the composite controllability-defeating score: the unweighted
// mean of the six factors. The paper lists the factors "in random order"
// and offers no weighting, so none is imposed.
func (f Factors) Index() float64 {
	return (f.Size + f.Age + f.Scalability + f.InstalledBase + f.Channel + f.EntryCost) / 6
}

// String renders the factor vector compactly for reports.
func (f Factors) String() string {
	return fmt.Sprintf("size %.2f, age %.2f, scal %.2f, base %.2f, chan %.2f, cost %.2f → %.2f",
		f.Size, f.Age, f.Scalability, f.InstalledBase, f.Channel, f.EntryCost, f.Index())
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// sizeScore maps physical footprint to a control-defeating score. Small
// systems move anonymously; room-size systems need liquid cooling and
// special power, which advertise their presence.
func sizeScore(s catalog.Size) float64 {
	switch s {
	case catalog.Desktop:
		return 1.0
	case catalog.Deskside:
		return 0.8
	case catalog.Rack:
		return 0.5
	default: // RoomSize and anything larger
		return 0.1
	}
}

// ageScore maps the product development cycle to a score: 1–2 year cycles
// mean systems are de-installed and resold while still potent, so
// "vendors may not have accurate or current information about their
// location and use".
func ageScore(cycleYears float64) float64 {
	if cycleYears <= 0 {
		return 0.5 // unknown; neutral
	}
	return clamp01(1.25 - 0.25*cycleYears)
}

// scalabilityScore reflects whether a user can upgrade a small, unrestricted
// configuration into a controlled-level one without a trained vendor
// representative present.
func scalabilityScore(upgradable bool) float64 {
	if upgradable {
		return 1.0
	}
	return 0.2
}

// installedBaseScore maps the number of units in the field onto a log
// scale: a dozen units can be tracked; tens of thousands cannot. Company
// estimates of the tracking limit "vary from about 200 to several
// thousands of units"; the scale passes through 0.35 at 250 units and
// saturates at 100,000.
func installedBaseScore(n int) float64 {
	if n <= 1 {
		return 0
	}
	return clamp01((math.Log10(float64(n)) - 1) / 4)
}

// channelScore reflects who has custody between factory and installation.
func channelScore(c catalog.Channel) float64 {
	switch c {
	case catalog.DirectSale:
		return 0.1
	case catalog.DealerNet:
		return 0.7
	default: // MassMarket
		return 1.0
	}
}

// entryCostScore maps entry-level price to market breadth: "approximately
// half a million dollars represents a crucial marketing threshold", and
// systems entering at $100–200,000 "enjoy still larger potential markets".
func entryCostScore(entry units.USD) float64 {
	switch p := float64(entry); {
	case p <= 0:
		return 0.5 // unknown; neutral
	case p < 10e3:
		return 1.0
	case p < 100e3:
		return 0.85
	case p < 200e3:
		return 0.7
	case p < 500e3:
		return 0.55
	case p < 1e6:
		return 0.35
	default:
		return 0.15
	}
}

// Score computes the six-factor vector for a catalog record.
func Score(s catalog.System) Factors {
	return Factors{
		Size:          sizeScore(s.Size),
		Age:           ageScore(s.CycleYears),
		Scalability:   scalabilityScore(s.Upgradable),
		InstalledBase: installedBaseScore(s.Installed),
		Channel:       channelScore(s.Channel),
		EntryCost:     entryCostScore(s.EntryPrice),
	}
}

// isCluster reports whether the record is a workstation cluster, which the
// frontier excludes by default.
func isCluster(s catalog.System) bool {
	return s.Class == catalog.AdHocCluster || s.Class == catalog.DedicatedCluster
}

// UncontrollableKind reports whether the product line's composite score
// puts it beyond practical control once its market matures. Clusters are
// always of uncontrollable kind ("a collection of computers is only as
// controllable as its most controllable component").
func UncontrollableKind(s catalog.System) bool {
	if isCluster(s) {
		return true
	}
	return Score(s).Index() >= UncontrollableIndex
}

// UncontrollableAsOf reports whether the specific record is effectively
// uncontrollable at the given time: of uncontrollable kind, with its
// market matured (introduced at least MaturationLag years earlier).
// Indigenous systems of the countries of concern are uncontrollable the
// moment they exist — they are already beyond the regime's reach.
func UncontrollableAsOf(s catalog.System, year float64) bool {
	return uncontrollableWithLag(s, year, MaturationLag)
}

// uncontrollableWithLag is UncontrollableAsOf with an explicit maturation
// lag, for the frontier's ablation option.
func uncontrollableWithLag(s catalog.System, year, lag float64) bool {
	if indigenous(s) {
		return float64(s.Year) <= year
	}
	if !UncontrollableKind(s) {
		return false
	}
	return float64(s.Year)+lag <= year
}

func indigenous(s catalog.System) bool {
	return s.Origin == catalog.Russia || s.Origin == catalog.PRC || s.Origin == catalog.India
}

// Options configures the frontier computation.
type Options struct {
	// IncludeClusters counts workstation clusters toward the frontier.
	// The paper argues against this; default false.
	IncludeClusters bool
	// ExcludeIndigenous drops the countries-of-concern curve, leaving the
	// pure Western-uncontrollability frontier of Figure 6.
	ExcludeIndigenous bool
	// Lag overrides the market-maturation lag in years for ablation
	// studies; 0 means the standard MaturationLag. Set Lag to a negative
	// value to model "uncontrollable at introduction".
	Lag float64
}

// lag returns the effective maturation lag for the options.
func (o Options) lag() float64 {
	switch {
	case o.Lag < 0:
		return 0
	case o.Lag == 0:
		return MaturationLag
	default:
		return o.Lag
	}
}

// Frontier returns the uncontrollability frontier at the given time: the
// highest-CTP system that is effectively uncontrollable then, under the
// options. ok is false if nothing is uncontrollable yet.
func Frontier(year float64, opts Options) (units.Mtops, catalog.System, bool) {
	var best catalog.System
	found := false
	for _, s := range catalog.All() {
		if isCluster(s) && !opts.IncludeClusters {
			continue
		}
		if indigenous(s) {
			if opts.ExcludeIndigenous {
				continue
			}
			// "In defining this trend, we do not include one-of-a-kind
			// installations": a single indigenous prototype does not
			// establish available computing power in a country of concern.
			if s.Installed < 2 {
				continue
			}
		}
		if !uncontrollableWithLag(s, year, opts.lag()) {
			continue
		}
		if !found || s.CTP > best.CTP {
			best, found = s, true
		}
	}
	if !found {
		return 0, catalog.System{}, false
	}
	return best.CTP, best, true
}

// FrontierSeries samples the frontier at the given step over [y0, y1],
// producing the lower-bound-of-controllability curve drawn in Figures 2,
// 7, and 13. Years before the first uncontrollable system are omitted.
func FrontierSeries(y0, y1, step float64, opts Options) trend.Series {
	var pts []trend.Point
	for y := y0; y <= y1+1e-9; y += step {
		if v, _, ok := Frontier(y, opts); ok {
			pts = append(pts, trend.Point{X: y, Y: float64(v)})
		}
	}
	return trend.Series{Name: "uncontrollability frontier", Points: pts}
}

// Row is one line of Table 4: a system with its factor scores, composite
// index, and verdict.
type Row struct {
	System  catalog.System
	Factors Factors
	Verdict bool // true = uncontrollable kind
}

// Table4 reproduces "Controllability of Selected Commercial HPC Systems":
// the commercial supplier-state systems of the mid-1990s market spectrum
// with their factor scores, ordered by descending composite index.
func Table4() []Row {
	names := []string{
		"486 PC",
		"Pentium PC",
		"Sun SPARCstation 10/30",
		"DEC AlphaServer 2100",
		"SGI Challenge XL",
		"SGI PowerChallenge XL",
		"Cray CS6400",
		"DEC AlphaServer 8400",
		"IBM SP2 (64)",
		"Convex Exemplar SPP1000",
		"Intel Paragon (328)",
		"TMC CM-5 (256)",
		"Cray T3D (256)",
		"Cray C916",
	}
	rows := make([]Row, 0, len(names))
	for _, n := range names {
		s, ok := catalog.Lookup(n)
		if !ok {
			continue
		}
		rows = append(rows, Row{System: s, Factors: Score(s), Verdict: UncontrollableKind(s)})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i].Factors.Index() > rows[j].Factors.Index()
	})
	return rows
}
