package controllability

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/units"
)

// lookup resolves a catalog record for the ablation tests.
func lookup(name string) (catalog.System, bool) { return catalog.Lookup(name) }

// The DESIGN.md-flagged design choices: the two-year maturation lag, the
// composite-index cutoff, and the factor scales. These ablations measure
// how the headline lower bound depends on each.

// TestAblationMaturationLag: the frontier is monotone non-increasing in
// the lag, and the headline band is specific to the two-year choice.
func TestAblationMaturationLag(t *testing.T) {
	at := func(lag float64) units.Mtops {
		v, _, ok := Frontier(1995.5, Options{Lag: lag})
		if !ok {
			t.Fatalf("no frontier at lag %v", lag)
		}
		return v
	}

	prev := units.Mtops(1 << 30)
	for _, lag := range []float64{-1, 1, 2, 3, 4} {
		v := at(lag)
		if v > prev {
			t.Errorf("frontier grew as lag lengthened: lag %v → %v after %v", lag, v, prev)
		}
		prev = v
	}

	// Lag 0 (uncontrollable at introduction) pulls the mid-1995 bound up
	// to the 1995 SMP generation (≈7,500); lag 2 gives the paper's
	// 4,000–5,000; lag 4 drops it to the 1991-and-earlier generation.
	if v := at(-1); v < 7000 {
		t.Errorf("no-lag frontier = %v; expected the 1995 generation (≥7,000)", v)
	}
	if v := at(2); v < 4000 || v > 5000 {
		t.Errorf("two-year frontier = %v; the headline band depends on this choice", v)
	}
	if v := at(4); v >= 4000 {
		t.Errorf("four-year frontier = %v; expected below the headline band", v)
	}
}

// TestAblationIndexCutoff: the classification split survives moderate
// perturbation of the 0.55 cutoff — the named systems are not borderline.
func TestAblationIndexCutoff(t *testing.T) {
	cs6400, _ := lookup("Cray CS6400")
	c916, _ := lookup("Cray C916")
	iCS := Score(cs6400).Index()
	iC9 := Score(c916).Index()
	for _, cutoff := range []float64{0.50, 0.55, 0.60} {
		if iCS < cutoff {
			t.Errorf("CS6400 index %.3f below cutoff %.2f — verdict fragile", iCS, cutoff)
		}
		if iC9 >= cutoff {
			t.Errorf("C916 index %.3f above cutoff %.2f — verdict fragile", iC9, cutoff)
		}
	}
}

// TestAblationSingleFactor: halving any single factor leaves the CS6400
// uncontrollable — the classification rests on the whole profile, not on
// a single attribute's exact scale.
func TestAblationSingleFactor(t *testing.T) {
	sys, ok := lookup("Cray CS6400")
	if !ok {
		t.Fatal("CS6400 missing")
	}
	base := Score(sys)
	halved := []Factors{
		{base.Size / 2, base.Age, base.Scalability, base.InstalledBase, base.Channel, base.EntryCost},
		{base.Size, base.Age / 2, base.Scalability, base.InstalledBase, base.Channel, base.EntryCost},
		{base.Size, base.Age, base.Scalability / 2, base.InstalledBase, base.Channel, base.EntryCost},
		{base.Size, base.Age, base.Scalability, base.InstalledBase / 2, base.Channel, base.EntryCost},
		{base.Size, base.Age, base.Scalability, base.InstalledBase, base.Channel / 2, base.EntryCost},
		{base.Size, base.Age, base.Scalability, base.InstalledBase, base.Channel, base.EntryCost / 2},
	}
	for i, f := range halved {
		if f.Index() < UncontrollableIndex {
			t.Errorf("halving factor %d flips the CS6400 verdict (index %.3f)", i, f.Index())
		}
	}
}
