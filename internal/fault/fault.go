// Package fault is the reproduction's deterministic fault-injection
// layer: seeded, per-route schedules of injected errors, latency, and
// cache poisoning that the query service mounts as middleware and the
// chaos test suite replays exactly.
//
// The design obeys the repository's determinism contract. A Plan never
// draws from the process-global random source or the wall clock; every
// decision is a pure function of (seed, route, slot), where the slot is
// the arrival index on that route. Two plans built from the same seed and
// profile therefore produce the identical fault sequence on every run and
// machine — and because concurrent arrivals merely race for *which* slot
// they take, not for what any slot holds, the multiset of decisions
// consumed by N arrivals is interleaving-independent. That is what makes
// chaos-test counters reproducible under -race and lets ci.sh diff a live
// daemon's fault counters against a committed golden file.
//
// A Profile says how often each fault fires; a Plan binds a profile to a
// seed and deals out decisions. The three fault kinds:
//
//	Error    the request fails with an injected 503 before its handler runs
//	Latency  the request is delayed by the profile's delay, then proceeds
//	Poison   the request's caches are treated as poisoned: the server
//	         recomputes directly and marks the response X-Degraded
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind is the class of an injected fault. None means the arrival proceeds
// untouched.
type Kind int

const (
	// None: no fault; the request proceeds normally.
	None Kind = iota
	// Error: the request fails with an injected 503.
	Error
	// Latency: the request is delayed before its handler runs.
	Latency
	// Poison: the request's cache lookups are poisoned; the server falls
	// back to direct computation.
	Poison
)

// String returns the kind's wire name.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Error:
		return "error"
	case Latency:
		return "latency"
	case Poison:
		return "poison"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Decision is the plan's verdict for one arrival.
type Decision struct {
	Kind  Kind
	Delay time.Duration // the injected pause, for Kind == Latency
	Slot  uint64        // the schedule slot this arrival consumed
}

// RouteProfile is one route's fault mix: independent probability bands for
// each kind, drawn from a single uniform variate per arrival, so the rates
// must sum to at most one.
type RouteProfile struct {
	Error   float64       // probability of an injected error
	Latency float64       // probability of an injected delay
	Delay   time.Duration // the delay injected when Latency fires
	Poison  float64       // probability of a poisoned cache lookup
}

// active reports whether the profile injects anything at all.
func (rp RouteProfile) active() bool {
	return rp.Error > 0 || rp.Latency > 0 || rp.Poison > 0
}

// validate checks the bands.
func (rp RouteProfile) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"error", rp.Error}, {"latency", rp.Latency}, {"poison", rp.Poison}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s rate %g outside [0,1]", r.name, r.v)
		}
	}
	if sum := rp.Error + rp.Latency + rp.Poison; sum > 1 {
		return fmt.Errorf("fault: rates sum to %g > 1", sum)
	}
	if rp.Delay < 0 {
		return fmt.Errorf("fault: negative delay %v", rp.Delay)
	}
	if rp.Latency > 0 && rp.Delay == 0 {
		return errors.New("fault: latency rate set without delay=")
	}
	return nil
}

// spec renders the profile as its canonical clause text.
func (rp RouteProfile) spec() string {
	var parts []string
	if rp.Error > 0 {
		parts = append(parts, "error="+formatRate(rp.Error))
	}
	if rp.Latency > 0 {
		parts = append(parts, "latency="+formatRate(rp.Latency), "delay="+rp.Delay.String())
	}
	if rp.Poison > 0 {
		parts = append(parts, "poison="+formatRate(rp.Poison))
	}
	return strings.Join(parts, ",")
}

func formatRate(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Profile is a fault mix for a whole service: a default applied to every
// injectable route, plus optional per-route overrides.
type Profile struct {
	Default RouteProfile
	Routes  map[string]RouteProfile // per-route overrides; may be nil
}

// For returns the profile governing one route.
func (p Profile) For(route string) RouteProfile {
	if rp, ok := p.Routes[route]; ok {
		return rp
	}
	return p.Default
}

// Validate checks every band of the profile.
func (p Profile) Validate() error {
	if err := p.Default.validate(); err != nil {
		return err
	}
	for _, route := range sortedRoutes(p.Routes) {
		if err := p.Routes[route].validate(); err != nil {
			return fmt.Errorf("%w (route %s)", err, route)
		}
	}
	return nil
}

// String renders the profile as a canonical Parse-able spec: the default
// clause first, then route overrides sorted by route. An inactive profile
// renders as "none".
func (p Profile) String() string {
	var clauses []string
	if p.Default.active() {
		clauses = append(clauses, p.Default.spec())
	}
	for _, route := range sortedRoutes(p.Routes) {
		if rp := p.Routes[route]; rp.active() {
			clauses = append(clauses, route+":"+rp.spec())
		}
	}
	if len(clauses) == 0 {
		return "none"
	}
	return strings.Join(clauses, ";")
}

// sortedRoutes returns the override routes in the one canonical order.
func sortedRoutes(m map[string]RouteProfile) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Parse builds a Profile from a preset name or a spec string.
//
// Presets: "none" (inject nothing), "flaky" (30% errors), "slow" (25%
// latency at 5ms), "chaos" (30% errors, 20% latency at 2ms, 10% poison).
//
// A spec is clauses joined by ';'. Each clause is comma-separated k=v
// pairs — error=RATE, latency=RATE, delay=DURATION, poison=RATE —
// optionally prefixed "ROUTE:" (the route starting with '/') to override
// one route instead of setting the default:
//
//	error=0.3,latency=0.2,delay=2ms,poison=0.1
//	error=0.1;/v1/license:error=0.5,poison=0.2
func Parse(spec string) (Profile, error) {
	switch strings.TrimSpace(spec) {
	case "", "none":
		return Profile{}, nil
	case "flaky":
		return Profile{Default: RouteProfile{Error: 0.3}}, nil
	case "slow":
		return Profile{Default: RouteProfile{Latency: 0.25, Delay: 5 * time.Millisecond}}, nil
	case "chaos":
		return Profile{Default: RouteProfile{
			Error: 0.3, Latency: 0.2, Delay: 2 * time.Millisecond, Poison: 0.1,
		}}, nil
	}
	var p Profile
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		route := ""
		body := clause
		if strings.HasPrefix(clause, "/") {
			i := strings.Index(clause, ":")
			if i < 0 {
				return Profile{}, fmt.Errorf("fault: route clause %q missing ':'", clause)
			}
			route, body = clause[:i], clause[i+1:]
		}
		rp, err := parseClause(body)
		if err != nil {
			return Profile{}, err
		}
		if route == "" {
			p.Default = rp
		} else {
			if p.Routes == nil {
				p.Routes = make(map[string]RouteProfile)
			}
			p.Routes[route] = rp
		}
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// parseClause parses one clause's k=v pairs into a RouteProfile.
func parseClause(body string) (RouteProfile, error) {
	var rp RouteProfile
	for _, kv := range strings.Split(body, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return RouteProfile{}, fmt.Errorf("fault: malformed pair %q (want key=value)", kv)
		}
		switch k {
		case "error", "latency", "poison":
			rate, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return RouteProfile{}, fmt.Errorf("fault: bad %s rate %q", k, v)
			}
			switch k {
			case "error":
				rp.Error = rate
			case "latency":
				rp.Latency = rate
			case "poison":
				rp.Poison = rate
			}
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil {
				return RouteProfile{}, fmt.Errorf("fault: bad delay %q", v)
			}
			rp.Delay = d
		default:
			return RouteProfile{}, fmt.Errorf("fault: unknown key %q", k)
		}
	}
	return rp, nil
}

// Plan deals a profile's faults deterministically: the decision for the
// n-th arrival on a route is a pure function of (seed, route, n). Next is
// safe for concurrent use; concurrent arrivals race only for which slot
// they take, never for what a slot holds.
type Plan struct {
	seed    uint64
	profile Profile

	mu    sync.Mutex
	slots map[string]uint64 // next slot per route
}

// NewPlan binds a profile to a seed, validating the profile.
func NewPlan(seed uint64, profile Profile) (*Plan, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	return &Plan{seed: seed, profile: profile, slots: make(map[string]uint64)}, nil
}

// Seed returns the plan's seed.
func (p *Plan) Seed() uint64 { return p.seed }

// Profile returns the plan's profile. The Routes map is shared; treat it
// as read-only.
func (p *Plan) Profile() Profile { return p.profile }

// Next consumes the route's next schedule slot and returns its decision.
func (p *Plan) Next(route string) Decision {
	p.mu.Lock()
	slot := p.slots[route]
	p.slots[route] = slot + 1
	p.mu.Unlock()
	return p.At(route, slot)
}

// Taken returns how many slots the route has consumed so far.
func (p *Plan) Taken(route string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.slots[route]
}

// At returns the decision for one schedule slot without consuming
// anything — the pure schedule accessor tests and golden checks replay.
func (p *Plan) At(route string, slot uint64) Decision {
	rp := p.profile.For(route)
	d := Decision{Kind: None, Slot: slot}
	if !rp.active() {
		return d
	}
	u := unit(p.seed ^ hashString(route) ^ slot*0x9e3779b97f4a7c15)
	switch {
	case u < rp.Error:
		d.Kind = Error
	case u < rp.Error+rp.Latency:
		d.Kind = Latency
		d.Delay = rp.Delay
	case u < rp.Error+rp.Latency+rp.Poison:
		d.Kind = Poison
	}
	return d
}

// Stream returns a deterministic uniform-[0,1) source seeded by seed — a
// splitmix64 counter stream. It is the package's randomness primitive and
// what the service client uses for backoff jitter, so retry timing is
// seed-reproducible too. The returned function is not safe for concurrent
// use; callers serialize it.
func Stream(seed uint64) func() float64 {
	state := seed
	return func() float64 {
		state += 0x9e3779b97f4a7c15
		return unit(state)
	}
}

// unit finishes a splitmix64 state into a uniform float64 in [0,1).
func unit(z uint64) float64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// hashString is FNV-1a over the route name.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
