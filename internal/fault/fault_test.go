package fault

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func mustPlan(t *testing.T, seed uint64, spec string) *Plan {
	t.Helper()
	prof, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	p, err := NewPlan(seed, prof)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	return p
}

func TestSameSeedSameSchedule(t *testing.T) {
	a := mustPlan(t, 42, "chaos")
	b := mustPlan(t, 42, "chaos")
	for _, route := range []string{"/v1/license", "/v1/threshold"} {
		for i := 0; i < 1000; i++ {
			da, db := a.Next(route), b.Next(route)
			if da != db {
				t.Fatalf("%s slot %d: %v vs %v", route, i, da, db)
			}
			if at := a.At(route, uint64(i)); at != da {
				t.Fatalf("%s slot %d: Next %v but At %v", route, i, da, at)
			}
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := mustPlan(t, 1, "chaos")
	b := mustPlan(t, 2, "chaos")
	same := true
	for i := uint64(0); i < 100; i++ {
		if a.At("/v1/license", i) != b.At("/v1/license", i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 100-slot schedules")
	}
}

func TestRoutesHaveIndependentStreams(t *testing.T) {
	p := mustPlan(t, 7, "chaos")
	same := true
	for i := uint64(0); i < 100; i++ {
		if p.At("/v1/license", i).Kind != p.At("/v1/threshold", i).Kind {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two routes produced identical 100-slot schedules")
	}
}

func TestCertainBands(t *testing.T) {
	cases := []struct {
		spec string
		want Kind
	}{
		{"error=1", Error},
		{"latency=1,delay=3ms", Latency},
		{"poison=1", Poison},
		{"none", None},
	}
	for _, tc := range cases {
		p := mustPlan(t, 9, tc.spec)
		for i := 0; i < 50; i++ {
			d := p.Next("/v1/license")
			if d.Kind != tc.want {
				t.Fatalf("%s slot %d: kind %v, want %v", tc.spec, i, d.Kind, tc.want)
			}
			if tc.want == Latency && d.Delay != 3*time.Millisecond {
				t.Fatalf("latency delay %v", d.Delay)
			}
		}
	}
}

// TestRatesRealized pins that the realized mix over many slots tracks the
// profile's bands. The counts are deterministic for a fixed seed; the
// tolerance only keeps the test honest about what a hash stream owes us.
func TestRatesRealized(t *testing.T) {
	p := mustPlan(t, 7, "chaos")
	const n = 10000
	var counts [4]int
	for i := uint64(0); i < n; i++ {
		counts[p.At("/v1/license", i).Kind]++
	}
	check := func(kind Kind, want float64) {
		got := float64(counts[kind]) / n
		if got < want-0.03 || got > want+0.03 {
			t.Errorf("%v rate %.3f, want ≈ %.2f", kind, got, want)
		}
	}
	check(Error, 0.3)
	check(Latency, 0.2)
	check(Poison, 0.1)
	check(None, 0.4)
}

func TestConcurrentNextConsumesEachSlotOnce(t *testing.T) {
	p := mustPlan(t, 3, "flaky")
	const workers, per = 64, 32
	slots := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				slots[w] = append(slots[w], p.Next("/v1/license").Slot)
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool, workers*per)
	for _, ws := range slots {
		for _, s := range ws {
			if seen[s] {
				t.Fatalf("slot %d consumed twice", s)
			}
			seen[s] = true
		}
	}
	for i := uint64(0); i < workers*per; i++ {
		if !seen[i] {
			t.Fatalf("slot %d never consumed", i)
		}
	}
	if got := p.Taken("/v1/license"); got != workers*per {
		t.Fatalf("Taken = %d, want %d", got, workers*per)
	}
}

func TestParsePresetsAndRoundTrip(t *testing.T) {
	for _, spec := range []string{"none", "flaky", "slow", "chaos"} {
		prof, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		again, err := Parse(prof.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", prof.String(), err)
		}
		if again.String() != prof.String() {
			t.Errorf("%s: round trip %q != %q", spec, again.String(), prof.String())
		}
	}
}

func TestParseSpecWithRouteOverride(t *testing.T) {
	prof, err := Parse("error=0.1;/v1/license:error=0.5,poison=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if prof.Default.Error != 0.1 {
		t.Errorf("default error = %g", prof.Default.Error)
	}
	lic := prof.For("/v1/license")
	if lic.Error != 0.5 || lic.Poison != 0.2 {
		t.Errorf("license override = %+v", lic)
	}
	if other := prof.For("/v1/catalog"); other.Error != 0.1 {
		t.Errorf("catalog fell outside the default: %+v", other)
	}
	want := "error=0.1;/v1/license:error=0.5,poison=0.2"
	if got := prof.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"error=2",                         // rate above 1
		"error=-0.1",                      // negative rate
		"error=0.6,latency=0.5,delay=1ms", // bands sum past 1
		"latency=0.2",                     // latency without delay
		"delay=-3ms,latency=0.1",          // negative delay
		"bogus=1",                         // unknown key
		"error",                           // missing =
		"error=x",                         // unparsable rate
		"delay=fast,latency=0.1",          // unparsable duration
		"/v1/license error=1",             // route clause missing ':'
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestNewPlanRejectsBadProfile(t *testing.T) {
	if _, err := NewPlan(1, Profile{Default: RouteProfile{Error: 1.5}}); err == nil {
		t.Fatal("NewPlan accepted an invalid profile")
	}
	if _, err := NewPlan(1, Profile{Routes: map[string]RouteProfile{
		"/v1/license": {Latency: 0.5},
	}}); err == nil || !strings.Contains(err.Error(), "/v1/license") {
		t.Fatalf("per-route validation error should name the route, got %v", err)
	}
}

func TestStreamDeterministicAndBounded(t *testing.T) {
	a, b := Stream(11), Stream(11)
	for i := 0; i < 1000; i++ {
		va, vb := a(), b()
		if va != vb {
			t.Fatalf("draw %d: %g vs %g", i, va, vb)
		}
		if va < 0 || va >= 1 {
			t.Fatalf("draw %d: %g outside [0,1)", i, va)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		None: "none", Error: "error", Latency: "latency", Poison: "poison", Kind(9): "Kind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
