// Package mpi is a small message-passing runtime in the mold of the PVM
// and MPI systems that the paper's cluster discussion revolves around —
// "the activities of workstations are coordinated by specialized
// distributed software such as Parallel Virtual Machine (PVM), Linda,
// Express" — implemented over goroutines and channels. It provides the
// primitives a mid-1990s parallel code used: point-to-point send/receive
// with tags, barriers, broadcast, scatter/gather, and all-reduce.
//
// The runtime exists so the repository's parallel kernels (the
// shallow-water stencil, conjugate gradient, key search) can be written
// the way the paper's subjects wrote them — as rank-parallel
// message-passing programs — and validated against their shared-memory
// counterparts. See package mpiprog.
//
// Semantics: messages between a (source, destination) pair are delivered
// in order; Recv matches on source and tag and returns an error on a tag
// mismatch (a programming error in an SPMD code, not a runtime
// condition). Collectives must be called by every rank. Run collects the
// first error any rank returns, and converts rank panics into errors.
package mpi

import (
	"errors"
	"fmt"
	"sync"
)

// message is one tagged payload.
type message struct {
	tag  int
	data []float64
}

// chanCap is the per-link buffer: deep enough that the symmetric
// neighbor exchanges of halo codes cannot deadlock.
const chanCap = 16

// Comm is a communicator: size ranks fully connected by buffered links.
// Collectives run on a separate channel plane so a barrier or reduction
// never consumes point-to-point traffic still in flight.
type Comm struct {
	size  int
	links [][]chan message // links[src][dst], point-to-point
	coll  [][]chan message // collective plane
}

// NewComm builds a communicator of the given size.
func NewComm(size int) (*Comm, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: communicator size %d", size)
	}
	plane := func() [][]chan message {
		m := make([][]chan message, size)
		for s := range m {
			m[s] = make([]chan message, size)
			for d := range m[s] {
				m[s][d] = make(chan message, chanCap)
			}
		}
		return m
	}
	return &Comm{size: size, links: plane(), coll: plane()}, nil
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Rank is one process's handle on the communicator.
type Rank struct {
	ID   int
	comm *Comm
}

// Size returns the communicator size.
func (r *Rank) Size() int { return r.comm.size }

// Errors returned by the runtime.
var (
	ErrBadRank  = errors.New("mpi: rank out of range")
	ErrTag      = errors.New("mpi: tag mismatch")
	ErrSelfSend = errors.New("mpi: send to self")
)

// sendOn delivers data on a channel plane, copying the payload so the
// sender may reuse its buffer immediately (MPI buffered-send semantics).
func (r *Rank) sendOn(plane [][]chan message, dst, tag int, data []float64) error {
	if dst < 0 || dst >= r.comm.size {
		return fmt.Errorf("%w: send to %d of %d", ErrBadRank, dst, r.comm.size)
	}
	if dst == r.ID {
		return fmt.Errorf("%w: rank %d", ErrSelfSend, r.ID)
	}
	buf := make([]float64, len(data))
	copy(buf, data)
	plane[r.ID][dst] <- message{tag: tag, data: buf}
	return nil
}

// recvOn blocks for the next message from src on a plane and checks its
// tag.
func (r *Rank) recvOn(plane [][]chan message, src, tag int) ([]float64, error) {
	if src < 0 || src >= r.comm.size {
		return nil, fmt.Errorf("%w: recv from %d of %d", ErrBadRank, src, r.comm.size)
	}
	if src == r.ID {
		return nil, fmt.Errorf("%w: rank %d", ErrSelfSend, r.ID)
	}
	m := <-plane[src][r.ID]
	if m.tag != tag {
		return nil, fmt.Errorf("%w: rank %d expected tag %d from %d, got %d",
			ErrTag, r.ID, tag, src, m.tag)
	}
	return m.data, nil
}

// Send delivers data to dst with the tag (point-to-point plane).
func (r *Rank) Send(dst, tag int, data []float64) error {
	return r.sendOn(r.comm.links, dst, tag, data)
}

// Recv blocks for the next point-to-point message from src and checks its
// tag.
func (r *Rank) Recv(src, tag int) ([]float64, error) {
	return r.recvOn(r.comm.links, src, tag)
}

// SendRecv performs a simultaneous exchange with a partner: send to dst,
// receive from src (commonly the same neighbor on the other side). Safe
// for symmetric halo exchanges because sends are buffered.
func (r *Rank) SendRecv(dst, src, tag int, out []float64) ([]float64, error) {
	if err := r.Send(dst, tag, out); err != nil {
		return nil, err
	}
	return r.Recv(src, tag)
}

// collective tags live in a reserved negative space so user tags (≥0)
// never collide with them.
const (
	tagBarrier = -1
	tagBcast   = -2
	tagGather  = -3
	tagScatter = -4
	tagReduce  = -5
)

// Barrier blocks until every rank has entered it: a gather of empty
// messages to rank 0 followed by a broadcast of release.
func (r *Rank) Barrier() error {
	if r.comm.size == 1 {
		return nil
	}
	if r.ID == 0 {
		for src := 1; src < r.comm.size; src++ {
			if _, err := r.recvOn(r.comm.coll, src, tagBarrier); err != nil {
				return err
			}
		}
		for dst := 1; dst < r.comm.size; dst++ {
			if err := r.sendOn(r.comm.coll, dst, tagBarrier, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := r.sendOn(r.comm.coll, 0, tagBarrier, nil); err != nil {
		return err
	}
	_, err := r.recvOn(r.comm.coll, 0, tagBarrier)
	return err
}

// Bcast distributes root's data to every rank; each rank returns its copy.
func (r *Rank) Bcast(root int, data []float64) ([]float64, error) {
	if root < 0 || root >= r.comm.size {
		return nil, fmt.Errorf("%w: bcast root %d", ErrBadRank, root)
	}
	if r.comm.size == 1 {
		return data, nil
	}
	if r.ID == root {
		for dst := 0; dst < r.comm.size; dst++ {
			if dst == root {
				continue
			}
			if err := r.sendOn(r.comm.coll, dst, tagBcast, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	return r.recvOn(r.comm.coll, root, tagBcast)
}

// Gather collects every rank's data at root, indexed by rank; non-root
// ranks return nil.
func (r *Rank) Gather(root int, data []float64) ([][]float64, error) {
	if root < 0 || root >= r.comm.size {
		return nil, fmt.Errorf("%w: gather root %d", ErrBadRank, root)
	}
	if r.ID != root {
		return nil, r.sendOn(r.comm.coll, root, tagGather, data)
	}
	out := make([][]float64, r.comm.size)
	buf := make([]float64, len(data))
	copy(buf, data)
	out[root] = buf
	for src := 0; src < r.comm.size; src++ {
		if src == root {
			continue
		}
		d, err := r.recvOn(r.comm.coll, src, tagGather)
		if err != nil {
			return nil, err
		}
		out[src] = d
	}
	return out, nil
}

// Scatter distributes parts[i] from root to rank i; every rank returns
// its part. Only root's parts argument is consulted.
func (r *Rank) Scatter(root int, parts [][]float64) ([]float64, error) {
	if root < 0 || root >= r.comm.size {
		return nil, fmt.Errorf("%w: scatter root %d", ErrBadRank, root)
	}
	if r.ID == root {
		if len(parts) != r.comm.size {
			return nil, fmt.Errorf("mpi: scatter of %d parts to %d ranks", len(parts), r.comm.size)
		}
		for dst := 0; dst < r.comm.size; dst++ {
			if dst == root {
				continue
			}
			if err := r.sendOn(r.comm.coll, dst, tagScatter, parts[dst]); err != nil {
				return nil, err
			}
		}
		return parts[root], nil
	}
	return r.recvOn(r.comm.coll, root, tagScatter)
}

// AllReduceSum element-wise sums x across ranks; every rank returns the
// total. Implemented as gather-reduce-broadcast, adding in rank order so
// the result is bitwise identical on every rank and across runs.
//
// A length mismatch between ranks is detected at the root and propagated
// to every rank through a status broadcast, so all ranks return the error
// together instead of the non-roots deadlocking on a result that will
// never come.
func (r *Rank) AllReduceSum(x []float64) ([]float64, error) {
	all, err := r.Gather(0, x)
	if err != nil {
		return nil, err
	}
	var total []float64
	status := []float64{1}
	if r.ID == 0 {
		total = make([]float64, len(x))
		for rank := 0; rank < r.comm.size; rank++ {
			part := all[rank]
			if len(part) != len(total) {
				status[0] = 0
				break
			}
			for i, v := range part {
				total[i] += v
			}
		}
	}
	status, err = r.Bcast(0, status)
	if err != nil {
		return nil, err
	}
	if status[0] == 0 {
		return nil, fmt.Errorf("mpi: allreduce length mismatch across ranks (rank %d sent %d)",
			r.ID, len(x))
	}
	return r.Bcast(0, total)
}

// Run launches size ranks of the program and waits for all of them. The
// first non-nil error (or recovered panic) is returned.
func Run(size int, program func(r *Rank) error) error {
	comm, err := NewComm(size)
	if err != nil {
		return err
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for id := 0; id < size; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[id] = fmt.Errorf("mpi: rank %d panicked: %v", id, p)
				}
			}()
			errs[id] = program(&Rank{ID: id, comm: comm})
		}(id)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
