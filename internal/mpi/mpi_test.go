package mpi

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

func TestNewCommErrors(t *testing.T) {
	if _, err := NewComm(0); err == nil {
		t.Error("zero-size communicator accepted")
	}
	if _, err := NewComm(-3); err == nil {
		t.Error("negative communicator accepted")
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	err := Run(2, func(r *Rank) error {
		switch r.ID {
		case 0:
			return r.Send(1, 7, []float64{1, 2, 3})
		default:
			got, err := r.Recv(0, 7)
			if err != nil {
				return err
			}
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				return fmt.Errorf("got %v", got)
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	err := Run(2, func(r *Rank) error {
		if r.ID == 0 {
			buf := []float64{42}
			if err := r.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = -1 // must not reach the receiver
			return r.Barrier()
		}
		if err := r.Barrier(); err != nil {
			return err
		}
		got, err := r.Recv(0, 0)
		if err != nil {
			return err
		}
		if got[0] != 42 {
			return fmt.Errorf("sender mutation leaked: %v", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMismatch(t *testing.T) {
	err := Run(2, func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, 1, nil)
		}
		_, err := r.Recv(0, 2)
		return err
	})
	if !errors.Is(err, ErrTag) {
		t.Errorf("want ErrTag, got %v", err)
	}
}

func TestRankValidation(t *testing.T) {
	err := Run(2, func(r *Rank) error {
		if r.ID != 0 {
			return nil
		}
		if err := r.Send(5, 0, nil); !errors.Is(err, ErrBadRank) {
			return fmt.Errorf("send out of range: %v", err)
		}
		if err := r.Send(0, 0, nil); !errors.Is(err, ErrSelfSend) {
			return fmt.Errorf("self send: %v", err)
		}
		if _, err := r.Recv(0, 0); !errors.Is(err, ErrSelfSend) {
			return fmt.Errorf("self recv: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdersPhases(t *testing.T) {
	var phase1 atomic.Int32
	err := Run(8, func(r *Rank) error {
		phase1.Add(1)
		if err := r.Barrier(); err != nil {
			return err
		}
		if n := phase1.Load(); n != 8 {
			return fmt.Errorf("rank %d passed barrier with %d arrivals", r.ID, n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	err := Run(5, func(r *Rank) error {
		var in []float64
		if r.ID == 2 {
			in = []float64{3.14, 2.72}
		}
		got, err := r.Bcast(2, in)
		if err != nil {
			return err
		}
		if len(got) != 2 || got[0] != 3.14 {
			return fmt.Errorf("rank %d got %v", r.ID, got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatter(t *testing.T) {
	err := Run(4, func(r *Rank) error {
		// Scatter rank-indexed parts, then gather them back.
		var parts [][]float64
		if r.ID == 0 {
			parts = [][]float64{{0}, {10}, {20}, {30}}
		}
		mine, err := r.Scatter(0, parts)
		if err != nil {
			return err
		}
		if mine[0] != float64(10*r.ID) {
			return fmt.Errorf("rank %d scattered %v", r.ID, mine)
		}
		all, err := r.Gather(0, mine)
		if err != nil {
			return err
		}
		if r.ID == 0 {
			for i, part := range all {
				if part[0] != float64(10*i) {
					return fmt.Errorf("gathered %v at %d", part, i)
				}
			}
		} else if all != nil {
			return fmt.Errorf("non-root gather returned data")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterWrongPartCount(t *testing.T) {
	err := Run(2, func(r *Rank) error {
		if r.ID == 0 {
			_, err := r.Scatter(0, [][]float64{{1}})
			return err
		}
		// Rank 1 would block forever waiting for its part; give it
		// nothing to do.
		return nil
	})
	if err == nil {
		t.Error("scatter with wrong part count accepted")
	}
}

func TestAllReduceSum(t *testing.T) {
	const n = 6
	err := Run(n, func(r *Rank) error {
		x := []float64{float64(r.ID), 1}
		sum, err := r.AllReduceSum(x)
		if err != nil {
			return err
		}
		want0 := float64(n * (n - 1) / 2)
		if sum[0] != want0 || sum[1] != n {
			return fmt.Errorf("rank %d: sum %v", r.ID, sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllReduceDeterministic: the reduction order is fixed (rank order),
// so results are bitwise identical across runs even for non-associative
// float sums.
func TestAllReduceDeterministic(t *testing.T) {
	run := func() float64 {
		var out float64
		err := Run(7, func(r *Rank) error {
			x := []float64{math.Pi / float64(r.ID+1)}
			s, err := r.AllReduceSum(x)
			if err != nil {
				return err
			}
			if r.ID == 0 {
				out = s[0]
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("allreduce not deterministic: %v vs %v", a, b)
	}
}

func TestSendRecvExchange(t *testing.T) {
	// A ring shift: every rank sends to the right, receives from the left.
	const n = 5
	err := Run(n, func(r *Rank) error {
		right := (r.ID + 1) % n
		left := (r.ID + n - 1) % n
		got, err := r.SendRecv(right, left, 9, []float64{float64(r.ID)})
		if err != nil {
			return err
		}
		if got[0] != float64(left) {
			return fmt.Errorf("rank %d received %v, want %d", r.ID, got, left)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	err := Run(3, func(r *Rank) error {
		if r.ID == 1 {
			panic("rank detonated")
		}
		return nil
	})
	if err == nil || !errors.Is(err, err) || err.Error() == "" {
		t.Fatalf("panic not surfaced: %v", err)
	}
}

func TestSingleRankCollectives(t *testing.T) {
	err := Run(1, func(r *Rank) error {
		if err := r.Barrier(); err != nil {
			return err
		}
		if got, err := r.Bcast(0, []float64{5}); err != nil || got[0] != 5 {
			return fmt.Errorf("bcast: %v %v", got, err)
		}
		if sum, err := r.AllReduceSum([]float64{7}); err != nil || sum[0] != 7 {
			return fmt.Errorf("allreduce: %v %v", sum, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderPreserved(t *testing.T) {
	err := Run(2, func(r *Rank) error {
		if r.ID == 0 {
			for i := 0; i < 10; i++ {
				if err := r.Send(1, 3, []float64{float64(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 10; i++ {
			got, err := r.Recv(0, 3)
			if err != nil {
				return err
			}
			if got[0] != float64(i) {
				return fmt.Errorf("out of order: got %v at %d", got, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
