package mpi

import (
	"errors"
	"fmt"
	"testing"
)

func TestSizeAccessors(t *testing.T) {
	c, err := NewComm(5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 5 {
		t.Errorf("Comm.Size = %d", c.Size())
	}
	err = Run(3, func(r *Rank) error {
		if r.Size() != 3 {
			return fmt.Errorf("rank %d sees size %d", r.ID, r.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveRootValidation(t *testing.T) {
	err := Run(2, func(r *Rank) error {
		if _, err := r.Bcast(9, nil); !errors.Is(err, ErrBadRank) {
			return fmt.Errorf("bcast bad root: %v", err)
		}
		if _, err := r.Gather(-1, nil); !errors.Is(err, ErrBadRank) {
			return fmt.Errorf("gather bad root: %v", err)
		}
		if _, err := r.Scatter(7, nil); !errors.Is(err, ErrBadRank) {
			return fmt.Errorf("scatter bad root: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvBadSource(t *testing.T) {
	err := Run(2, func(r *Rank) error {
		if r.ID != 0 {
			return nil
		}
		if _, err := r.Recv(9, 0); !errors.Is(err, ErrBadRank) {
			return fmt.Errorf("recv bad source: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvPropagatesSendError(t *testing.T) {
	err := Run(2, func(r *Rank) error {
		if r.ID != 0 {
			return nil
		}
		if _, err := r.SendRecv(9, 1, 0, nil); !errors.Is(err, ErrBadRank) {
			return fmt.Errorf("sendrecv bad dst: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllReduceLengthMismatch: ranks contributing different lengths is a
// programming error the reduction must catch, not corrupt.
func TestAllReduceLengthMismatch(t *testing.T) {
	err := Run(2, func(r *Rank) error {
		x := make([]float64, 1+r.ID) // rank 0: len 1, rank 1: len 2
		_, err := r.AllReduceSum(x)
		return err
	})
	if err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRunPropagatesCommError(t *testing.T) {
	if err := Run(0, func(r *Rank) error { return nil }); err == nil {
		t.Error("zero-size run accepted")
	}
}

// TestBarrierPhasedRepeated: barriers are reusable (no residue between
// phases).
func TestBarrierPhasedRepeated(t *testing.T) {
	err := Run(4, func(r *Rank) error {
		for i := 0; i < 20; i++ {
			if err := r.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGatherAtNonZeroRoot covers the non-default root paths.
func TestGatherAtNonZeroRoot(t *testing.T) {
	err := Run(3, func(r *Rank) error {
		all, err := r.Gather(2, []float64{float64(r.ID * 11)})
		if err != nil {
			return err
		}
		if r.ID == 2 {
			for i, part := range all {
				if part[0] != float64(11*i) {
					return fmt.Errorf("root 2 gathered %v at %d", part, i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
