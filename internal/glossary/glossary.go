// Package glossary reproduces Appendix A, the paper's glossary of
// acronyms, as a queryable dataset. Beyond fidelity, it gives the report
// layer a single place to expand the alphabet soup of the exhibits.
package glossary

import (
	"sort"
	"strings"
)

// entries maps each acronym to its expansion as used in the paper.
var entries = map[string]string{
	"ACW":    "advanced conventional weapons",
	"ALERT":  "Attack and Launch Early Reporting to Theater",
	"ASCM":   "anti-ship cruise missile",
	"ASW":    "anti-submarine warfare",
	"ATB":    "Advanced Technology Bomber",
	"ATM":    "Asynchronous Transfer Mode",
	"ATR":    "automatic target recognition",
	"C4I":    "command, control, communications, computing, and intelligence",
	"CCM":    "computational chemistry and materials science",
	"CDAC":   "Center for Development of Advanced Computing (Pune)",
	"CEA":    "computational electromagnetics and acoustics",
	"CEN":    "computational electronics and nanoelectronics",
	"CFD":    "computational fluid dynamics",
	"CISAC":  "Center for International Security and Arms Control",
	"CoCom":  "Coordinating Committee for Multilateral Export Controls",
	"COTS":   "commercial off-the-shelf",
	"CSM":    "computational structural mechanics",
	"CSTAC":  "Computer Systems Technical Advisory Committee",
	"CTA":    "computational technology area",
	"CTP":    "Composite Theoretical Performance",
	"CWO":    "climate, weather, and ocean modeling",
	"DBA":    "database activities",
	"DES":    "Digital Encryption Standard",
	"DoD":    "Department of Defense",
	"DSP":    "Defense Support Program (satellites); also digital signal processing",
	"DT&E":   "developmental test and evaluation",
	"EAA":    "Export Administration Act",
	"EAR":    "Export Administration Regulations",
	"EQM":    "environmental quality monitoring and simulation",
	"FDDI":   "Fiber Distributed Data Interconnect",
	"FMS":    "forces modeling and simulation",
	"HiPPI":  "High-Performance Parallel Interconnect",
	"HPC":    "high-performance computing",
	"HPCMO":  "High-Performance Computer Modernization Office",
	"IR&D":   "independent research and development",
	"ITMVT":  "Institute for Precision Mechanics and Computer Technology",
	"IW":     "information warfare",
	"JAST":   "Joint Advanced Strike Technology",
	"MIPS":   "millions of (fixed-point) instructions per second",
	"MPP":    "massively parallel processor",
	"Mflops": "millions of floating-point operations per second",
	"Mtops":  "millions of theoretical operations per second",
	"NAASW":  "non-acoustic anti-submarine warfare",
	"NDST":   "National Defense Science and Technology University (Changsha)",
	"NPT":    "Nuclear Non-Proliferation Treaty",
	"OEM":    "original equipment manufacturer",
	"PRC":    "People's Republic of China",
	"PVM":    "Parallel Virtual Machine",
	"RDT&E":  "research, development, test and evaluation",
	"RISC":   "reduced instruction set computer",
	"RTDA":   "real-time data acquisition",
	"RTMS":   "real-time modeling and simulation",
	"S&T":    "science and technology",
	"SAR":    "synthetic aperture radar",
	"SIP":    "signal and image processing",
	"SIRST":  "shipboard infrared search and track",
	"SMP":    "symmetrical multiprocessor",
	"TA":     "test analysis",
	"TPCC":   "Trade Promotion Coordinating Committee",
	"VAR":    "value-added re-seller",
}

// Lookup expands an acronym (case-sensitive first, then case-insensitive).
func Lookup(acronym string) (string, bool) {
	if v, ok := entries[acronym]; ok {
		return v, true
	}
	for k, v := range entries {
		if strings.EqualFold(k, acronym) {
			return v, true
		}
	}
	return "", false
}

// Entry is one glossary line.
type Entry struct {
	Acronym, Expansion string
}

// All returns the glossary sorted by acronym — Appendix A's layout.
func All() []Entry {
	out := make([]Entry, 0, len(entries))
	for k, v := range entries {
		out = append(out, Entry{Acronym: k, Expansion: v})
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.ToLower(out[i].Acronym) < strings.ToLower(out[j].Acronym)
	})
	return out
}

// Len returns the number of entries.
func Len() int { return len(entries) }
