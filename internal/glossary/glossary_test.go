package glossary

import (
	"strings"
	"testing"
)

func TestLookup(t *testing.T) {
	if v, ok := Lookup("CTP"); !ok || !strings.Contains(v, "Composite Theoretical") {
		t.Errorf("CTP: %q %v", v, ok)
	}
	if v, ok := Lookup("ctp"); !ok || v == "" {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := Lookup("ZZZZ"); ok {
		t.Error("unknown acronym found")
	}
}

func TestAllSortedAndComplete(t *testing.T) {
	all := All()
	if len(all) != Len() || len(all) < 50 {
		t.Fatalf("glossary has %d entries", len(all))
	}
	for i := 1; i < len(all); i++ {
		if strings.ToLower(all[i].Acronym) < strings.ToLower(all[i-1].Acronym) {
			t.Errorf("glossary out of order at %q", all[i].Acronym)
		}
	}
	for _, e := range all {
		if e.Acronym == "" || e.Expansion == "" {
			t.Errorf("blank entry %+v", e)
		}
	}
}

// TestCoreVocabularyPresent: the terms the analysis depends on must all
// expand.
func TestCoreVocabularyPresent(t *testing.T) {
	for _, a := range []string{"CTP", "Mtops", "HPC", "SMP", "MPP", "CoCom",
		"ACW", "C4I", "SIRST", "PVM", "RDT&E", "Mflops"} {
		if _, ok := Lookup(a); !ok {
			t.Errorf("glossary missing %q", a)
		}
	}
}
