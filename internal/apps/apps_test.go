package apps

import (
	"math"
	"testing"
	"testing/quick"

	"fmt"
	"math/rand"
	"repro/internal/catalog"
	"repro/internal/units"
)

func TestValidate(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAllSortedByMin(t *testing.T) {
	all := All()
	if len(all) < 45 {
		t.Fatalf("only %d curated applications", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Min < all[i-1].Min {
			t.Errorf("All() not sorted at %q", all[i].Name)
		}
	}
}

func TestStatedMinima(t *testing.T) {
	// Minimum requirements the paper prints verbatim.
	anchors := map[string]float64{
		"F-117A design":                                       0.8,
		"B-2 (ATB) design":                                    189,
		"JAST candidate design":                               3485,
		"Trajectory image analysis (real-time)":               6,
		"Store separation simulation (F/A-18)":                1153,
		"Acoustic bottom contour modeling (shallow water)":    8000,
		"TOPSAR near-real-time topographic mapping":           8000,
		"Warhead/structure interaction (symmetric transonic)": 1098,
		"Smart Munitions Test Suite image processing":         5194,
		"SIRST ASCM defense (deployed)":                       13000,
		"Visible-light sensor processing (deployed)":          24000,
		"F-22 avionics suite":                                 9000,
		"Global weather model (120 km)":                       200,
		"Tactical weather prediction (45 km)":                 10000,
		"Chem/bio defense local forecast (1 km, 3 h)":         21125,
		"Littoral fine-grained forecast (5 km, 10 day)":       100000,
		"Theater communications switching":                    20.8,
		"NAASW deployed sensor suite":                         500,
		"Robust nuclear weapons simulation":                   1400,
	}
	for name, want := range anchors {
		a, ok := Lookup(name)
		if !ok {
			t.Errorf("missing application %q", name)
			continue
		}
		if float64(a.Min) != want {
			t.Errorf("%s: Min = %v, want %v", name, float64(a.Min), want)
		}
		if a.Source != catalog.Stated {
			t.Errorf("%s: provenance %v, want stated", name, a.Source)
		}
	}
}

func TestByMissionPartition(t *testing.T) {
	total := 0
	for _, m := range []Mission{NuclearWeapons, Cryptology, ACW, MilitaryOperations} {
		apps := ByMission(m)
		if len(apps) == 0 {
			t.Errorf("mission %v has no applications", m)
		}
		total += len(apps)
	}
	if total != len(All()) {
		t.Errorf("missions partition %d apps, dataset has %d", total, len(All()))
	}
}

func TestAboveBound(t *testing.T) {
	above := AboveBound(4600)
	if len(above) < 15 {
		t.Errorf("only %d applications above the mid-1995 frontier", len(above))
	}
	for _, a := range above {
		if a.Min <= 4600 {
			t.Errorf("%s: min %v not above bound", a.Name, a.Min)
		}
	}
	if len(AboveBound(1e9)) != 0 {
		t.Error("applications above an absurd bound")
	}
}

// TestTwoThirdsBelowFrontier encodes the key finding: "More than two-thirds
// of the applications for which data are available can be carried out
// using computers below the threshold of controllability defined in
// Chapter 3."
func TestTwoThirdsBelowFrontier(t *testing.T) {
	const frontier = 4600 // mid-1995
	pop := CombinedSurvey()
	if len(pop) < 650 || len(pop) > 800 {
		t.Fatalf("combined survey has %d entries; HPCMO covered ≈700", len(pop))
	}
	frac := FractionBelow(pop, frontier)
	if frac <= 2.0/3.0 {
		t.Errorf("%.1f%% of applications below the frontier; paper requires >2/3", frac*100)
	}
}

// TestSevenToEightThousandBand: "Of those remaining, about five percent
// require the use of computers in the 7,000–8,000 Mtops range."
func TestSevenToEightThousandBand(t *testing.T) {
	const frontier = 4600
	var remaining []units.Mtops
	for _, v := range CombinedSurvey() {
		if v >= frontier {
			remaining = append(remaining, v)
		}
	}
	if len(remaining) == 0 {
		t.Fatal("no applications above the frontier")
	}
	frac := FractionWithin(remaining, 7000, 8000)
	if frac < 0.02 || frac > 0.15 {
		t.Errorf("7,000–8,000 band holds %.1f%% of above-frontier applications; paper says about five percent", frac*100)
	}
	// "A smaller but still significant number of applications require the
	// use of computers of at least 10,000 Mtops."
	n10k := 0
	for _, v := range remaining {
		if v >= 10000 {
			n10k++
		}
	}
	if n10k < 5 {
		t.Errorf("only %d applications at ≥10,000 Mtops", n10k)
	}
}

func TestSyntheticPopulationsDeterministic(t *testing.T) {
	a, b := STPopulation1994(), STPopulation1994()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("S&T population not deterministic")
		}
	}
	c, d := DTEPopulation(1996), DTEPopulation(1996)
	for i := range c {
		if c[i] != d[i] {
			t.Fatal("DT&E population not deterministic")
		}
	}
}

func TestSTPopulationShape(t *testing.T) {
	pop := SurveyMtops(STPopulation1994())
	if len(pop) != stCount {
		t.Fatalf("S&T population size %d", len(pop))
	}
	// "most of today's DoD HPC applications are being performed on
	// relatively low-power machines": the bulk below the 1,500 threshold.
	if f := FractionBelow(pop, 1500); f < 0.6 {
		t.Errorf("only %.1f%% of S&T population below 1,500 Mtops", f*100)
	}
	// But a real high tail exists.
	top := 0
	for _, v := range pop {
		if v > 10000 {
			top++
		}
	}
	if top == 0 {
		t.Error("S&T population has no high-end tail")
	}
}

// TestDTEProjectionGrows: Figure 9's projected 1996 distribution shifts
// right of the 1995 distribution in aggregate, even though a quarter of
// projects migrate down onto parallel clusters.
func TestDTEProjectionGrows(t *testing.T) {
	cur := SurveyMtops(DTEPopulation(1995))
	proj := SurveyMtops(DTEPopulation(1996))
	var sc, sp float64
	for i := range cur {
		sc += float64(cur[i])
		sp += float64(proj[i])
	}
	if sp <= sc {
		t.Errorf("projected 1996 total %.0f not above 1995 total %.0f", sp, sc)
	}
	// Migration is present: some individual projects get cheaper.
	down := 0
	for i := range cur {
		if proj[i] < cur[i] {
			down++
		}
	}
	if down == 0 {
		t.Error("no projects migrated down to parallel systems")
	}
}

func TestHistogram(t *testing.T) {
	vals := []units.Mtops{5, 50, 150, 1000, 5000, 50000}
	edges := []float64{0, 10, 100, 1500, 10000, math.Inf(1)}
	got := Histogram(vals, edges)
	want := []int{1, 1, 2, 1, 1}
	if len(got) != len(want) {
		t.Fatalf("histogram %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
}

// TestHistogramConservation: every value lands in exactly one bucket.
func TestHistogramConservation(t *testing.T) {
	f := func(raw []uint32) bool {
		vals := make([]units.Mtops, len(raw))
		for i, v := range raw {
			vals[i] = units.Mtops(v % 200000)
		}
		counts := Histogram(vals, PolicyBins)
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	// A value exactly on an edge belongs to the bucket it opens.
	got := Histogram([]units.Mtops{10, 100}, []float64{0, 10, 100, math.Inf(1)})
	if got[0] != 0 || got[1] != 1 || got[2] != 1 {
		t.Errorf("edge placement wrong: %v", got)
	}
}

func TestFractionHelpers(t *testing.T) {
	vals := []units.Mtops{1, 2, 3, 4}
	if f := FractionBelow(vals, 3); f != 0.5 {
		t.Errorf("FractionBelow = %v", f)
	}
	if f := FractionWithin(vals, 2, 3); f != 0.5 {
		t.Errorf("FractionWithin = %v", f)
	}
	if FractionBelow(nil, 10) != 0 || FractionWithin(nil, 0, 10) != 0 {
		t.Error("empty-slice fractions nonzero")
	}
}

func TestTables(t *testing.T) {
	if got := Table6(); len(got) != 9 {
		t.Errorf("Table 6 has %d areas, want 9", len(got))
	}
	if got := Table7(); len(got) != 4 {
		t.Errorf("Table 7 has %d functions, want 4", len(got))
	}
	if got := Table8(); len(got) != 4 {
		t.Errorf("Table 8 has %d areas, want 4", len(got))
	}
	if got := Table13(); len(got) != 4 {
		t.Errorf("Table 13 has %d areas, want 4", len(got))
	}
	for id, rows := range map[int][]FunctionRow{9: Table9(), 10: Table10(), 11: Table11(), 12: Table12()} {
		if len(rows) < 5 {
			t.Errorf("Table %d has %d rows", id, len(rows))
		}
		for _, r := range rows {
			if r.Function == "" || len(r.CTAs) == 0 {
				t.Errorf("Table %d has malformed row %+v", id, r)
			}
		}
	}
}

func TestTable14And15(t *testing.T) {
	t14, t15 := Table14(), Table15()
	if len(t14) < 20 {
		t.Errorf("Table 14 has %d rows", len(t14))
	}
	if len(t15) < 10 {
		t.Errorf("Table 15 has %d rows", len(t15))
	}
	if len(t14)+len(t15) != len(All()) {
		t.Errorf("Tables 14+15 cover %d apps, dataset has %d", len(t14)+len(t15), len(All()))
	}
	for i := 1; i < len(t14); i++ {
		if t14[i].Min < t14[i-1].Min {
			t.Error("Table 14 not sorted by minimum")
		}
	}
}

func TestCTAStrings(t *testing.T) {
	if CFD.String() != "CFD" || Crypt.String() != "Crypt" {
		t.Error("CTA abbreviations wrong")
	}
	if CFD.Description() != "Computational Fluid Dynamics" {
		t.Error("CFD description wrong")
	}
	if CTA(99).String() != "CTA(99)" {
		t.Error("unknown CTA formatting")
	}
	for _, c := range append(Table6(), Table7()...) {
		if c.Description() == "" {
			t.Errorf("CTA %v lacks description", c)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if NuclearWeapons.String() != "nuclear weapons programs" || Mission(9).String() != "Mission(9)" {
		t.Error("Mission strings")
	}
	if Embarrassing.String() != "embarrassingly parallel" || Granularity(9).String() != "Granularity(9)" {
		t.Error("Granularity strings")
	}
}

func TestApplicationString(t *testing.T) {
	a, _ := Lookup("F-117A design")
	if got := a.String(); got != "F-117A design (min 0.8 Mtops)" {
		t.Errorf("String() = %q", got)
	}
}

func TestLookupMissing(t *testing.T) {
	if _, ok := Lookup("no such application"); ok {
		t.Error("lookup of missing name succeeded")
	}
}

// TestPopulationRNGSameSeedIsByteIdentical: the survey populations are
// functions of their seed alone.
func TestPopulationRNGSameSeedIsByteIdentical(t *testing.T) {
	a := STPopulationRNG(rand.New(rand.NewSource(17)))
	b := STPopulationRNG(rand.New(rand.NewSource(17)))
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Error("S&T population: same seed diverged")
	}
	c := DTEPopulationRNG(1996, rand.New(rand.NewSource(17)))
	d := DTEPopulationRNG(1996, rand.New(rand.NewSource(17)))
	if fmt.Sprintf("%+v", c) != fmt.Sprintf("%+v", d) {
		t.Error("DT&E population: same seed diverged")
	}
	if fmt.Sprintf("%+v", STPopulation1994()) != fmt.Sprintf("%+v", STPopulation1994()) {
		t.Error("canonical S&T population is not reproducible")
	}
}
