// Package apps is the study's application-side dataset: the national
// security applications of Chapter 4 with their minimum computational
// requirements (the "stalactites"), the computational technology areas and
// functional areas of Tables 6–13, and synthetic reconstructions of the
// DoD HPCMO survey populations behind Figures 8 and 9.
//
// The defining question of the study's interviews was unusual: "What is
// the least computational power that would be sufficient to execute your
// program?" The answer, converted to Mtops through the CTP rating of the
// named minimum configuration, is an application's minimum requirement —
// the only bound that matters for export control, since an application
// whose minimum lies below the uncontrollability frontier cannot be denied
// to anyone by hardware controls.
package apps

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/units"
)

// Mission is one of the four broad application groups of Chapter 4.
type Mission int

const (
	NuclearWeapons Mission = iota
	Cryptology
	ACW // advanced conventional weapons RDT&E
	MilitaryOperations
)

// String returns the mission group's display name.
func (m Mission) String() string {
	switch m {
	case NuclearWeapons:
		return "nuclear weapons programs"
	case Cryptology:
		return "cryptology"
	case ACW:
		return "advanced conventional weapons"
	case MilitaryOperations:
		return "military operations"
	default:
		return fmt.Sprintf("Mission(%d)", int(m))
	}
}

// CTA is a computational technology area (Table 6), extended with the
// developmental test and evaluation computational functions (Table 7) and
// cryptology, "a fourteenth distinct computational area".
type CTA int

const (
	CCM   CTA = iota // Computational Chemistry and Materials Science
	CEA              // Computational Electromagnetics and Acoustics
	CEN              // Computational Electronics and Nanoelectronics
	CFD              // Computational Fluid Dynamics
	CSM              // Computational Structural Mechanics
	CWO              // Climate, Weather, and Ocean Modeling
	EQM              // Environmental Quality Monitoring and Simulation
	FMS              // Forces Modeling and Simulation / C4I
	SIP              // Signal and Image Processing
	DBA              // Database Activities (DT&E)
	RTDA             // Real-Time Data Acquisition (DT&E)
	RTMS             // Real-Time Modeling and Simulation (DT&E)
	TA               // Test Analysis (DT&E)
	Crypt            // Cryptology
)

// String returns the CTA's standard abbreviation.
func (c CTA) String() string {
	names := [...]string{"CCM", "CEA", "CEN", "CFD", "CSM", "CWO", "EQM",
		"FMS", "SIP", "DBA", "RTDA", "RTMS", "TA", "Crypt"}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("CTA(%d)", int(c))
}

// Description returns the CTA's full name as given in Tables 6 and 7.
func (c CTA) Description() string {
	switch c {
	case CCM:
		return "Computational Chemistry and Materials Science"
	case CEA:
		return "Computational Electromagnetics and Acoustics"
	case CEN:
		return "Computational Electronics and Nanoelectronics"
	case CFD:
		return "Computational Fluid Dynamics"
	case CSM:
		return "Computational Structural Mechanics"
	case CWO:
		return "Climate, Weather, and Ocean Modeling"
	case EQM:
		return "Environmental Quality Monitoring and Simulation"
	case FMS:
		return "Forces Modeling and Simulation/C4I"
	case SIP:
		return "Signal and Image Processing"
	case DBA:
		return "Database Activities"
	case RTDA:
		return "Real-Time Data Acquisition"
	case RTMS:
		return "Real-Time Modeling and Simulation"
	case TA:
		return "Test Analysis"
	case Crypt:
		return "Cryptology"
	default:
		return c.String()
	}
}

// Granularity classifies how an application's parallelism maps onto
// loosely coupled hardware — the property that decides whether clusters of
// uncontrollable workstations can substitute for an integrated system.
type Granularity int

const (
	// Embarrassing: independent subproblems, essentially no communication
	// (brute-force key search, ray tracing, replicated problems).
	Embarrassing Granularity = iota
	// Coarse: occasional exchange; clusters competitive.
	Coarse
	// Medium: regular boundary exchange (explicit stencils); clusters
	// saturate at 8–12 nodes.
	Medium
	// Fine: global communication every few operations (sparse solvers,
	// spectral methods); clusters uncompetitive.
	Fine
	// NotParallel: resists decomposition altogether (long sequential
	// dependency chains, memory-bound single-image codes).
	NotParallel
)

// String returns the granularity's display name.
func (g Granularity) String() string {
	switch g {
	case Embarrassing:
		return "embarrassingly parallel"
	case Coarse:
		return "coarse-grain"
	case Medium:
		return "medium-grain"
	case Fine:
		return "fine-grain"
	case NotParallel:
		return "not parallelizable"
	default:
		return fmt.Sprintf("Granularity(%d)", int(g))
	}
}

// Application is one curated Chapter 4 application record.
type Application struct {
	Name        string
	Mission     Mission
	Area        string // functional area (Tables 8 and 13 vocabulary)
	CTAs        []CTA
	Min         units.Mtops // minimum useful configuration (the stalactite tip)
	Actual      units.Mtops // configuration actually in use
	ActualName  string      // catalog name of the actual system, if cataloged
	FirstYear   int         // year first successfully performed (or projected)
	RealTime    bool        // hard real-time processing requirement
	Deployed    bool        // operational/embedded use (vs. RDT&E)
	Granularity Granularity
	MemoryBound bool // large closely-coupled memory requirement
	Notes       string
	Source      catalog.Provenance
}

// String renders the record in the paper's citation style.
func (a Application) String() string {
	return fmt.Sprintf("%s (min %s)", a.Name, a.Min)
}

// All returns every curated application record, sorted by minimum
// requirement. The returned slice is a copy.
func All() []Application {
	out := make([]Application, len(applications))
	copy(out, applications)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Min != out[j].Min {
			return out[i].Min < out[j].Min
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ByMission returns the curated applications of one mission group.
func ByMission(m Mission) []Application {
	var out []Application
	for _, a := range All() {
		if a.Mission == m {
			out = append(out, a)
		}
	}
	return out
}

// Lookup finds a curated application by exact name.
func Lookup(name string) (Application, bool) {
	for _, a := range applications {
		if a.Name == name {
			return a, true
		}
	}
	return Application{}, false
}

// Minima returns the sorted minimum requirements of all curated
// applications — the stalactite tips of Figures 2 and 10.
func Minima() []units.Mtops {
	all := All()
	out := make([]units.Mtops, len(all))
	for i, a := range all {
		out[i] = a.Min
	}
	return out
}

// AboveBound returns the curated applications whose minimum requirement
// exceeds the given bound, sorted by minimum.
func AboveBound(bound units.Mtops) []Application {
	var out []Application
	for _, a := range All() {
		if a.Min > bound {
			out = append(out, a)
		}
	}
	return out
}

// Validate checks dataset integrity: unique names, positive minima,
// Min ≤ Actual where both are known, years in range, and catalog
// cross-references resolving.
func Validate() error {
	seen := map[string]bool{}
	for _, a := range applications {
		if a.Name == "" {
			return fmt.Errorf("apps: record with empty name")
		}
		if seen[a.Name] {
			return fmt.Errorf("apps: duplicate name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Min <= 0 {
			return fmt.Errorf("apps: %s: non-positive minimum %v", a.Name, a.Min)
		}
		if a.Actual != 0 && a.Actual < a.Min {
			return fmt.Errorf("apps: %s: actual %v below minimum %v", a.Name, a.Actual, a.Min)
		}
		if a.FirstYear < 1940 || a.FirstYear > 2000 {
			return fmt.Errorf("apps: %s: year %d out of range", a.Name, a.FirstYear)
		}
		if len(a.CTAs) == 0 {
			return fmt.Errorf("apps: %s: no computational technology areas", a.Name)
		}
		if a.ActualName != "" {
			if _, ok := catalog.Lookup(a.ActualName); !ok {
				return fmt.Errorf("apps: %s: actual system %q not in catalog", a.Name, a.ActualName)
			}
		}
	}
	return nil
}
