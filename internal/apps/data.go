package apps

import "repro/internal/catalog"

// applications is the curated Chapter 4 dataset. Every Mtops figure the
// paper prints is carried verbatim and marked Stated; minima the paper
// implies but does not print are Reconstructed, chosen to preserve every
// aggregate claim the paper makes (two-thirds of applications below the
// controllability frontier, an R&D group starting near 7,000 Mtops, a
// military-operations group near 10,000 Mtops).
var applications = []Application{
	// ==================================================================
	// Nuclear weapons programs.
	// ==================================================================
	{
		Name: "First-generation nuclear weapon design", Mission: NuclearWeapons,
		Area: "Nuclear design", CTAs: []CTA{CFD, CSM},
		Min: 1, Actual: 67, FirstYear: 1945,
		Granularity: Coarse,
		Notes:       "designed with mechanical calculators; 'greatly facilitated' by a PC",
		Source:      catalog.Stated,
	},
	{
		Name: "Robust nuclear weapons simulation", Mission: NuclearWeapons,
		Area: "Nuclear design", CTAs: []CTA{CFD, CSM},
		Min: 1400, Actual: 1400, FirstYear: 1994,
		Granularity: Fine, MemoryBound: true,
		Notes:  "'fairly robust' simulations on dedicated 1,400 Mtops workstations",
		Source: catalog.Stated,
	},
	{
		Name: "Second-generation weapon design (with test data)", Mission: NuclearWeapons,
		Area: "Nuclear design", CTAs: []CTA{CFD, CSM, CCM},
		Min: 1500, Actual: 21125, ActualName: "Cray C916", FirstYear: 1960,
		Granularity: Fine, MemoryBound: true,
		Notes:  "requires ≥1,500 Mtops plus empirical test data",
		Source: catalog.Stated,
	},
	{
		Name: "Stockpile confidence simulation", Mission: NuclearWeapons,
		Area: "Stockpile stewardship", CTAs: []CTA{CFD, CSM, CCM},
		Min: 18000, Actual: 21125, ActualName: "Cray C916", FirstYear: 1993,
		Granularity: Fine, MemoryBound: true,
		Notes:  "confidence without testing requires 'the most powerful computers available'",
		Source: catalog.Reconstructed,
	},

	// ==================================================================
	// Cryptology.
	// ==================================================================
	{
		Name: "Brute-force DES key search (24-hour)", Mission: Cryptology,
		Area: "Cryptoanalysis", CTAs: []CTA{Crypt},
		Min: 50, Actual: 800, FirstYear: 1993,
		Granularity: Embarrassing,
		Notes:       "'tailor-made for parallel processors'; any keyspace partition works",
		Source:      catalog.Reconstructed,
	},
	{
		Name: "Narrow-target cipher attack", Mission: Cryptology,
		Area: "Cryptoanalysis", CTAs: []CTA{Crypt},
		Min: 100, Actual: 1500, FirstYear: 1990,
		Granularity: Embarrassing,
		Notes:       "'limited means but limited goals': one cipher system of one country",
		Source:      catalog.Reconstructed,
	},
	{
		Name: "Cipher system design and validation", Mission: Cryptology,
		Area: "Cryptography", CTAs: []CTA{Crypt},
		Min: 400, Actual: 2000, FirstYear: 1988,
		Granularity: Coarse,
		Notes:       "design and use of encipherment systems",
		Source:      catalog.Reconstructed,
	},

	// ==================================================================
	// Advanced conventional weapons: aerodynamic vehicle design (Table 9).
	// ==================================================================
	{
		Name: "F-117A design", Mission: ACW,
		Area: "Aerodynamic vehicle design", CTAs: []CTA{CEA, CFD},
		Min: 0.8, Actual: 189, ActualName: "IBM 3090/250", FirstYear: 1978,
		Granularity: NotParallel,
		Notes:       "a VAX-11/780 (0.8 Mtops) 'would have just met their requirements'",
		Source:      catalog.Stated,
	},
	{
		Name: "B-2 (ATB) design", Mission: ACW,
		Area: "Aerodynamic vehicle design", CTAs: []CTA{CEA, CFD},
		Min: 189, Actual: 189, ActualName: "IBM 3090/250", FirstYear: 1981,
		Granularity: NotParallel,
		Notes:       "the 189 Mtops mainframe 'was the smallest computer that could have been effectively employed'",
		Source:      catalog.Stated,
	},
	{
		Name: "F-22 design (simultaneous CEA/CFD optimization)", Mission: ACW,
		Area: "Aerodynamic vehicle design", CTAs: []CTA{CEA, CFD, CSM},
		Min: 500, Actual: 958, ActualName: "Cray Y-MP/2", FirstYear: 1991,
		Granularity: Fine, MemoryBound: true,
		Notes:  "high-resolution 3-D simulation impossible on lesser equipment; Cray 'more economical' than the 3090",
		Source: catalog.Reconstructed,
	},
	{
		Name: "JAST candidate design", Mission: ACW,
		Area: "Aerodynamic vehicle design", CTAs: []CTA{CEA, CFD},
		Min: 3485, Actual: 4864, ActualName: "Intel Paragon (150)", FirstYear: 1994,
		Granularity: Medium,
		Notes:       "the original 128-node iPSC/860 (3,485 Mtops) 'believed to be minimally sufficient'",
		Source:      catalog.Stated,
	},
	{
		Name: "Stealth cruise missile design", Mission: ACW,
		Area: "Aerodynamic vehicle design", CTAs: []CTA{CEA, CFD},
		Min: 2000, Actual: 4864, ActualName: "Intel Paragon (150)", FirstYear: 1993,
		Granularity: Medium,
		Notes:       "smaller body, fewer calculations than a fighter; computing not the limiting factor",
		Source:      catalog.Reconstructed,
	},
	{
		Name: "High-frequency (>1 GHz) scattering analysis", Mission: ACW,
		Area: "Aerodynamic vehicle design", CTAs: []CTA{CEA},
		Min: 300, Actual: 1153, ActualName: "SGI PowerChallenge (small)", FirstYear: 1993,
		Granularity: Coarse,
		Notes:       "adapted for powerful workstations",
		Source:      catalog.Reconstructed,
	},
	{
		Name: "Low-frequency resonance/inhomogeneous wave analysis", Mission: ACW,
		Area: "Aerodynamic vehicle design", CTAs: []CTA{CEA},
		Min: 4000, Actual: 21125, ActualName: "Cray C916", FirstYear: 1992,
		Granularity: Fine, MemoryBound: true,
		Notes:  "still requires large integrated systems",
		Source: catalog.Reconstructed,
	},
	{
		Name: "Flight-test processing and simulation", Mission: ACW,
		Area: "Aerodynamic vehicle design", CTAs: []CTA{RTDA, TA},
		Min: 1000, Actual: 3439, ActualName: "Cray T3D (small)", FirstYear: 1990,
		Granularity: Coarse,
		Notes:       "readily scalable; aggregate power matters more than any single machine",
		Source:      catalog.Reconstructed,
	},
	{
		Name: "Trajectory image analysis (real-time)", Mission: ACW,
		Area: "Aerodynamic vehicle design", CTAs: []CTA{SIP, RTDA},
		Min: 6, Actual: 3439, ActualName: "Cray T3D (small)", FirstYear: 1986, RealTime: true,
		Granularity: Coarse,
		Notes:       "runs 'very constrained' on a six-node VAX-8600 cluster (≈6 Mtops); the T3D processes far more sensor inputs",
		Source:      catalog.Stated,
	},
	{
		Name: "Store separation simulation (F/A-18)", Mission: ACW,
		Area: "Aerodynamic vehicle design", CTAs: []CTA{CFD},
		Min: 1153, Actual: 21125, ActualName: "Cray C916", FirstYear: 1994,
		Granularity: Medium, MemoryBound: true,
		Notes:  "'memory size is often more critical than processor performance'; runs from PowerChallenge (1,153) to C916/Paragon",
		Source: catalog.Stated,
	},

	// ==================================================================
	// ACW: submarine design (Table 10).
	// ==================================================================
	{
		Name: "Submarine structural acoustics (CSM)", Mission: ACW,
		Area: "Submarine design", CTAs: []CTA{CEA, CSM},
		Min: 16000, Actual: 21125, ActualName: "Cray C916", FirstYear: 1992,
		Granularity: NotParallel, MemoryBound: true,
		Notes:  "10–20 h/run × ≥2,000 runs; 'little chance' of replication on uncontrolled computers",
		Source: catalog.Reconstructed,
	},
	{
		Name: "Turbulent-flow radiated noise (shallow water)", Mission: ACW,
		Area: "Submarine design", CTAs: []CTA{CFD},
		Min: 20000, Actual: 21125, ActualName: "Cray C916", FirstYear: 1993,
		Granularity: NotParallel, MemoryBound: true,
		Notes:  "needs ≥128M 64-bit words; 'the only system currently capable' is a 16-node Cray",
		Source: catalog.Reconstructed,
	},
	{
		Name: "Submarine signature reduction (shaping)", Mission: ACW,
		Area: "Submarine design", CTAs: []CTA{CEA, CFD},
		Min: 3000, Actual: 10056, ActualName: "Cray T3D (256)", FirstYear: 1991,
		Granularity: Fine,
		Notes:       "acoustic and electromagnetic signature modeling",
		Source:      catalog.Reconstructed,
	},

	// ==================================================================
	// ACW: surveillance and target detection (Table 11).
	// ==================================================================
	{
		Name: "ATR template development", Mission: ACW,
		Area: "Surveillance design", CTAs: []CTA{SIP, CEA},
		Min: 7000, Actual: 24000, FirstYear: 1993,
		Granularity: Coarse,
		Notes:       "thousands of hours on ≥24,000 Mtops systems; convertible to very large workstation clusters",
		Source:      catalog.Reconstructed,
	},
	{
		Name: "Radar performance prediction (clutter/jamming)", Mission: ACW,
		Area: "Surveillance design", CTAs: []CTA{CEA, SIP},
		Min: 4500, Actual: 24000, FirstYear: 1994,
		Granularity: Coarse,
		Notes:       "'performance increments permit more simultaneous solutions, yielding more accurate templates'",
		Source:      catalog.Reconstructed,
	},
	{
		Name: "Acoustic bottom contour modeling (shallow water)", Mission: ACW,
		Area: "Surveillance design", CTAs: []CTA{CEA, CWO},
		Min: 8000, Actual: 21125, ActualName: "Cray C916", FirstYear: 1994,
		Granularity: Fine, MemoryBound: true,
		Notes:  "'an absolute minimum of 8,000–9,600 Mtops of processing power to execute'",
		Source: catalog.Stated,
	},
	{
		Name: "Acoustic sensor R&D (ocean modeling)", Mission: ACW,
		Area: "Surveillance design", CTAs: []CTA{CEA, CWO},
		Min: 16500, Actual: 21125, ActualName: "Cray C916", FirstYear: 1990,
		Granularity: Fine, MemoryBound: true,
		Notes:  "large finite-element and 2-D ocean acoustic models; 64-bit closely coupled memory; unsuitable for clusters",
		Source: catalog.Reconstructed,
	},
	{
		Name: "NAASW sensor physics development", Mission: ACW,
		Area: "Surveillance design", CTAs: []CTA{CEN, SIP},
		Min: 2000, Actual: 4600, FirstYear: 1994,
		Granularity: Coarse,
		Notes:       "overnight tasks on a 64–128 node Paragon (2,000–4,600 Mtops); cluster conversion costs two weeks per run",
		Source:      catalog.Stated,
	},
	{
		Name: "NAASW deployed sensor suite", Mission: MilitaryOperations,
		Area: "ASW surveillance", CTAs: []CTA{SIP},
		Min: 500, Actual: 500, FirstYear: 1997, RealTime: true, Deployed: true,
		Granularity: Medium,
		Notes:       "'expected to require only about 500 Mtops' once developed",
		Source:      catalog.Stated,
	},
	{
		Name: "Digital cartography (non-time-critical)", Mission: ACW,
		Area: "Surveillance design", CTAs: []CTA{SIP, DBA},
		Min: 200, Actual: 2300, ActualName: "Intel Paragon (64)", FirstYear: 1992,
		Granularity: Embarrassing,
		Notes:       "'economically feasible rather than the most operationally desirable computers'",
		Source:      catalog.Reconstructed,
	},
	{
		Name: "TOPSAR near-real-time topographic mapping", Mission: ACW,
		Area: "Surveillance design", CTAs: []CTA{SIP},
		Min: 8000, FirstYear: 1996, RealTime: true,
		Granularity: Medium,
		Notes:       "combat support will need 'a minimum of 8,000 Mtops and possibly as much as 24,000'; development on the NAASW Paragon",
		Source:      catalog.Stated,
	},

	// ==================================================================
	// ACW: survivability, protective structures, weapons lethality
	// (Table 12).
	// ==================================================================
	{
		Name: "Warhead/structure interaction (symmetric transonic)", Mission: ACW,
		Area: "Survivability and lethality", CTAs: []CTA{CSM, CFD},
		Min: 1098, Actual: 1098, ActualName: "Cray Model 2", FirstYear: 1990,
		Granularity: Fine,
		Notes:       "two hours per run on a Cray Model 2 (1,098 Mtops); full asymmetric model 40 hours",
		Source:      catalog.Stated,
	},
	{
		Name: "Advanced armor penetration modeling", Mission: ACW,
		Area: "Survivability and lethality", CTAs: []CTA{CSM, CCM},
		Min: 1098, Actual: 21125, ActualName: "Cray C916", FirstYear: 1991,
		Granularity: Fine,
		Notes:       "≈200 h/run; kinetic-kill vs hybrid armor up to 2,000 h; optimization 14,000 h per candidate",
		Source:      catalog.Stated,
	},
	{
		Name: "Weapons effects on complex structures", Mission: ACW,
		Area: "Survivability and lethality", CTAs: []CTA{CSM},
		Min: 10000, Actual: 21125, ActualName: "Cray C916", FirstYear: 1993,
		Granularity: Fine, MemoryBound: true,
		Notes:  "several hundred hours per iteration on the C916",
		Source: catalog.Reconstructed,
	},
	{
		Name: "Deep penetration weapon design", Mission: ACW,
		Area: "Survivability and lethality", CTAs: []CTA{CSM, CCM},
		Min: 7200, Actual: 21125, ActualName: "Cray C916", FirstYear: 1993,
		Granularity: Fine, MemoryBound: true,
		Notes:  "multi-strata non-linear 3-D finite elements; high pressures, short time scales, high resolution",
		Source: catalog.Reconstructed,
	},
	{
		Name: "Nuclear blast effects on structures", Mission: ACW,
		Area: "Survivability and lethality", CTAs: []CTA{CFD, CSM},
		Min: 3000, Actual: 21125, ActualName: "Cray C916", FirstYear: 1991,
		Granularity: Medium,
		Notes:       "2-D ≈200 h, 3-D ≈600 h on the C916; being adapted to the T3D (10,056) and CM-5 (10,457)",
		Source:      catalog.Stated,
	},
	{
		Name: "Smart Munitions Test Suite image processing", Mission: ACW,
		Area: "Survivability and lethality", CTAs: []CTA{SIP, RTMS},
		Min: 5194, Actual: 5194, ActualName: "TMC CM-5 (128)", FirstYear: 1994, RealTime: true,
		Granularity: Medium,
		Notes:       "128-node CM-5 partition (5,194 Mtops), upgrading to 14,410 'for additional realism'; double-wide HIPPI input at 70 MHz",
		Source:      catalog.Stated,
	},
	{
		Name: "Mobile laser weapons effects modeling", Mission: ACW,
		Area: "Survivability and lethality", CTAs: []CTA{CEA, CCM},
		Min: 2500, Actual: 10056, ActualName: "Cray T3D (256)", FirstYear: 1995,
		Granularity: Fine,
		Notes:       "new requirement generated by high-power mobile-laser development",
		Source:      catalog.Reconstructed,
	},

	// ==================================================================
	// Military operations (Table 13): C4I, battle management, sensors,
	// meteorology.
	// ==================================================================
	{
		Name: "SIRST ASCM defense (deployed)", Mission: MilitaryOperations,
		Area: "Air defense", CTAs: []CTA{SIP}, RealTime: true, Deployed: true,
		Min: 13000, Actual: 13000, FirstYear: 1997,
		Granularity: Medium, MemoryBound: true,
		Notes:  "≈6,500 Mflops sustained (≈13,000 Mtops) against 'Sunburn'-class sea-skimmers; a 7,400 Mtops Mercury 'might be minimally sufficient' in degraded form",
		Source: catalog.Stated,
	},
	{
		Name: "SIRST algorithm development", Mission: ACW,
		Area: "Surveillance design", CTAs: []CTA{SIP},
		Min: 4800, Actual: 8980, ActualName: "Intel Paragon (328)", FirstYear: 1994,
		Granularity: Medium,
		Notes:       "algorithms developed on a 328-node Paragon (8,980 Mtops)",
		Source:      catalog.Reconstructed,
	},
	{
		Name: "Visible-light sensor processing (deployed)", Mission: MilitaryOperations,
		Area: "Air defense", CTAs: []CTA{SIP}, RealTime: true, Deployed: true,
		Min: 24000, Actual: 24000, FirstYear: 1997,
		Granularity: Medium, MemoryBound: true,
		Notes:  "development on a 24,000 Mtops HPC; deployed suite 'will require similar computing power' in smaller, lighter form",
		Source: catalog.Stated,
	},
	{
		Name: "Integrated battle management system", Mission: MilitaryOperations,
		Area: "C4I and battle management", CTAs: []CTA{FMS, DBA}, Deployed: true,
		Min: 100, Actual: 1000, FirstYear: 1993,
		Granularity: Coarse,
		Notes:       "'efficiently provided by distributed computer systems'; SP2/PowerChallenge class, 100–1,000 Mtops",
		Source:      catalog.Stated,
	},
	{
		Name: "F-22 avionics suite", Mission: MilitaryOperations,
		Area: "C4I and battle management", CTAs: []CTA{SIP, FMS}, RealTime: true, Deployed: true,
		Min: 9000, Actual: 9000, FirstYear: 1997,
		Granularity: Medium, MemoryBound: true,
		Notes:  "1.6 million lines of code on a pair of computers with CTPs of about 9,000 Mtops; size/weight/power constrained",
		Source: catalog.Stated,
	},
	{
		Name: "AN/BSY-2 submarine combat system", Mission: MilitaryOperations,
		Area: "C4I and battle management", CTAs: []CTA{SIP, FMS}, RealTime: true, Deployed: true,
		Min: 200, Actual: 400, FirstYear: 1995,
		Granularity: Coarse,
		Notes:       "five million lines of code over 100+ embedded Motorola processors",
		Source:      catalog.Stated,
	},
	{
		Name: "Real-time battlefield simulation (obscurants/weather)", Mission: MilitaryOperations,
		Area: "C4I and battle management", CTAs: []CTA{FMS, RTMS}, RealTime: true,
		Min: 8000, Actual: 10056, ActualName: "Cray T3D (256)", FirstYear: 1995,
		Granularity: Medium,
		Notes:       "simulations executed on remote MPPs 'in excess of 8,000 Mtops'; fielded versions projected well above 1,000",
		Source:      catalog.Stated,
	},
	{
		Name: "Battlefield surveillance fusion", Mission: MilitaryOperations,
		Area: "C4I and battle management", CTAs: []CTA{SIP, FMS, DBA}, RealTime: true, Deployed: true,
		Min: 10500, Actual: 14410, ActualName: "TMC CM-5 (384)", FirstYear: 1996,
		Granularity: Medium, MemoryBound: true,
		Notes:  "wide-area sensor fusion named in the 10,000 Mtops military-operations group",
		Source: catalog.Reconstructed,
	},
	{
		Name: "ALERT theater missile warning", Mission: MilitaryOperations,
		Area: "C4I and battle management", CTAs: []CTA{SIP, FMS}, RealTime: true, Deployed: true,
		Min: 1700, Actual: 1700, ActualName: "SGI Onyx (server)", FirstYear: 1995,
		Granularity: Coarse,
		Notes:       "central suite of three Onyx servers (1,700 Mtops) plus 14 networked Onyx workstations (300 Mtops)",
		Source:      catalog.Stated,
	},
	{
		Name: "Theater communications switching", Mission: MilitaryOperations,
		Area: "C4I and battle management", CTAs: []CTA{FMS}, RealTime: true, Deployed: true,
		Min: 20.8, Actual: 53.3, ActualName: "Sun SPARCstation 10/30", FirstYear: 1990,
		Granularity: Coarse,
		Notes:       "Desert Storm ran on SPARCstation 4/300s (20.8 Mtops); the fix was software, not hardware",
		Source:      catalog.Stated,
	},
	{
		Name: "Information warfare operations", Mission: MilitaryOperations,
		Area: "C4I and battle management", CTAs: []CTA{FMS, DBA},
		Min: 100, Actual: 800, FirstYear: 1994,
		Granularity: Embarrassing,
		Notes:       "'a large number of efficiently networked workstations will prove more useful than a few HPC installations'",
		Source:      catalog.Stated,
	},
	{
		Name: "Distributed training simulation", Mission: MilitaryOperations,
		Area: "C4I and battle management", CTAs: []CTA{FMS, RTMS},
		Min: 800, Actual: 2000, FirstYear: 1994,
		Granularity: Coarse,
		Notes:       "'most of these applications are executed in a distributed fashion on uncontrollable computer systems'",
		Source:      catalog.Stated,
	},
	{
		Name: "Global weather model (120 km)", Mission: MilitaryOperations,
		Area: "Meteorology", CTAs: []CTA{CWO},
		Min: 200, Actual: 10625, ActualName: "Cray C90/8", FirstYear: 1988,
		Granularity: Medium,
		Notes:       "'a typical global weather model with 120 km resolution can be executed on a workstation in the 200 Mtops range'",
		Source:      catalog.Stated,
	},
	{
		Name: "Tactical weather prediction (45 km)", Mission: MilitaryOperations,
		Area: "Meteorology", CTAs: []CTA{CWO}, Deployed: true,
		Min: 10000, Actual: 10625, ActualName: "Cray C90/8", FirstYear: 1993,
		Granularity: Medium, MemoryBound: true,
		Notes:  "'typical tactical weather models with 45 km resolution require computers rated in excess of 10,000'; the 8-node C90 'barely adequate'",
		Source: catalog.Stated,
	},
	{
		Name: "Chem/bio defense local forecast (1 km, 3 h)", Mission: MilitaryOperations,
		Area: "Meteorology", CTAs: []CTA{CWO}, RealTime: true, Deployed: true,
		Min: 21125, Actual: 21125, ActualName: "Cray C916", FirstYear: 1996,
		Granularity: Medium, MemoryBound: true,
		Notes:  "rapid 1 km/3-hour forecasts over small areas; 'requires a Cray C916'",
		Source: catalog.Stated,
	},
	{
		Name: "Littoral fine-grained forecast (5 km, 10 day)", Mission: MilitaryOperations,
		Area: "Meteorology", CTAs: []CTA{CWO}, Deployed: true,
		Min: 100000, FirstYear: 1998,
		Granularity: Medium, MemoryBound: true,
		Notes:  "routine production requires the 64-node upgrade, 'well over 100,000 Mtops'",
		Source: catalog.Stated,
	},

	// ==================================================================
	// Additional applications of the survey's broad middle: all below
	// the controllability frontier, where "most of today's DoD HPC
	// applications are being performed".
	// ==================================================================
	{
		Name: "SAR strip-map image formation", Mission: ACW,
		Area: "Surveillance design", CTAs: []CTA{SIP},
		Min: 900, Actual: 2300, ActualName: "Intel Paragon (64)", FirstYear: 1992,
		Granularity: Coarse,
		Notes:       "range-Doppler processing; FFT-dominated, batch mode",
		Source:      catalog.Reconstructed,
	},
	{
		Name: "Mine warfare acoustic modeling", Mission: ACW,
		Area: "Surveillance design", CTAs: []CTA{CEA, CWO},
		Min: 1200, Actual: 3439, ActualName: "Cray T3D (small)", FirstYear: 1993,
		Granularity: Medium,
		Notes:       "shallow-water bottom-object scattering at mine-hunting frequencies",
		Source:      catalog.Reconstructed,
	},
	{
		Name: "Corps-level wargaming model", Mission: MilitaryOperations,
		Area: "C4I and battle management", CTAs: []CTA{FMS},
		Min: 150, Actual: 800, FirstYear: 1991,
		Granularity: Coarse,
		Notes:       "aggregated combat simulation for staff exercises",
		Source:      catalog.Reconstructed,
	},
	{
		Name: "Torpedo terminal guidance processing", Mission: MilitaryOperations,
		Area: "ASW surveillance", CTAs: []CTA{SIP}, RealTime: true, Deployed: true,
		Min: 60, Actual: 60, FirstYear: 1992,
		Granularity: Medium,
		Notes:       "embedded sonar processing under severe size/power constraints",
		Source:      catalog.Reconstructed,
	},
	{
		Name: "IR scene generation for hardware-in-the-loop", Mission: ACW,
		Area: "Survivability and lethality", CTAs: []CTA{RTMS, SIP}, RealTime: true,
		Min: 3000, Actual: 5194, ActualName: "TMC CM-5 (128)", FirstYear: 1994,
		Granularity: Medium,
		Notes:       "synthetic target/background imagery fed to seeker hardware in real time",
		Source:      catalog.Reconstructed,
	},
}
