package apps

import (
	"math"
	"math/rand"

	"repro/internal/units"
)

// Requirement is one entry of the HPCMO-style survey populations: an
// anonymous project with a performance figure and a computational
// technology area. The real HPCMO databases covered "approximately 700 DoD
// HPC applications"; they are not public, so the populations here are
// synthetic reconstructions with the aggregate shape the paper reports:
// "the computational requirements for most of these programs fall well
// below the uncontrollability level; many are lower than current export
// control thresholds."
type Requirement struct {
	Mtops units.Mtops
	CTA   CTA
	Year  int
}

// Population sizes, chosen to total ≈700 like the HPCMO databases.
const (
	stCount  = 560 // science & technology projects (Figure 8)
	dteCount = 140 // developmental test & evaluation projects (Figure 9)
)

// stSeed and dteSeed fix the synthetic populations; regeneration is
// bit-identical across runs.
const (
	stSeed  = 1994
	dteSeed = 1995
)

// stCTAs weights the S&T population across the Table 6 areas, CFD and CSM
// heaviest per the paper ("CFD ... represents a significant portion of the
// HPC performed in support of defense programs").
var stCTAs = []CTA{CFD, CFD, CFD, CSM, CSM, CEA, CEA, CWO, SIP, SIP, FMS, CCM, CEN, EQM}

// dteCTAs weights the DT&E population across the Table 7 functions.
var dteCTAs = []CTA{RTDA, RTDA, RTMS, RTMS, RTMS, TA, TA, DBA}

// lognormal draws a log-normally distributed Mtops value with the given
// log-median and log-sigma, clipped to [lo, hi].
func lognormal(rng *rand.Rand, median, sigma, lo, hi float64) units.Mtops {
	v := median * math.Exp(rng.NormFloat64()*sigma)
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return units.Mtops(v)
}

// STPopulation1994 returns the synthetic S&T survey population behind
// Figure 8: performance levels of the machines running ≈560 S&T projects
// in 1994. The population is a two-component mixture: roughly two-thirds of
// projects run in the workstation/small-SMP range ("most of today's DoD
// HPC applications are being performed on relatively low-power machines"),
// while a high component — the programs "whose criticality to national
// defense justifies the higher level of investment" — occupies the
// multi-thousand-Mtops band, so that somewhat under a third of the survey
// sits above the mid-1995 controllability frontier, matching the paper's
// "more than two-thirds … below" aggregate.
func STPopulation1994() []Requirement {
	return STPopulationRNG(rand.New(rand.NewSource(stSeed)))
}

// STPopulationRNG draws the S&T population from the caller's explicitly
// seeded generator. The canonical Figure 8 population is
// STPopulation1994; alternative seeds give resampled populations for
// sensitivity analysis, and identical seeds reproduce identical
// populations byte for byte.
func STPopulationRNG(rng *rand.Rand) []Requirement {
	out := make([]Requirement, stCount)
	for i := range out {
		var m units.Mtops
		if rng.Float64() < 0.65 {
			m = lognormal(rng, 200, 1.3, 1, 30000)
		} else {
			m = lognormal(rng, 5000, 0.8, 1, 30000)
		}
		out[i] = Requirement{
			Mtops: m,
			CTA:   stCTAs[rng.Intn(len(stCTAs))],
			Year:  1994,
		}
	}
	return out
}

// DTEPopulation returns the synthetic DT&E population behind Figure 9 for
// year 1995 (current) or 1996 (projected). The projection multiplies
// requirements by the growth the paper describes — applications "become
// more complex in response to the availability of more powerful
// computers" — while a parallelizing migration moves some work down onto
// clusters of smaller machines.
func DTEPopulation(year int) []Requirement {
	return DTEPopulationRNG(year, rand.New(rand.NewSource(dteSeed)))
}

// DTEPopulationRNG draws the DT&E population from the caller's explicitly
// seeded generator; see STPopulationRNG for the seeding contract. The
// 1995 and 1996 populations must be drawn from generators with the same
// seed for the projection to pair projects correctly.
func DTEPopulationRNG(year int, rng *rand.Rand) []Requirement {
	out := make([]Requirement, dteCount)
	for i := range out {
		m := lognormal(rng, 130, 1.5, 1, 15000)
		cta := dteCTAs[rng.Intn(len(dteCTAs))]
		grow := 1.9 + 0.6*rng.Float64() // 1996 projected growth factor
		parallelize := rng.Float64() < 0.25
		if year >= 1996 {
			if parallelize {
				// Converted to run distributed: per-system requirement drops.
				m = units.Mtops(float64(m) * 0.5)
			} else {
				m = units.Mtops(float64(m) * grow)
			}
		}
		out[i] = Requirement{Mtops: m, CTA: cta, Year: year}
	}
	return out
}

// SurveyMtops flattens a population to its performance values.
func SurveyMtops(reqs []Requirement) []units.Mtops {
	out := make([]units.Mtops, len(reqs))
	for i, r := range reqs {
		out[i] = r.Mtops
	}
	return out
}

// PolicyBins are the histogram bin edges, in Mtops, used for the
// distribution figures (8, 9, 10, 11). They mark the policy-relevant
// landmarks: the old 195 and current 1,500 Mtops thresholds, the mid-1995
// controllability band (4,000–5,000), the application clusters (7,000 and
// 10,000), and the C90/C916 class.
var PolicyBins = []float64{0, 10, 100, 195, 500, 1500, 4000, 7000, 10000, 20000, math.Inf(1)}

// Histogram counts values into the bins defined by edges: bucket i covers
// [edges[i], edges[i+1]). Values below edges[0] land in bucket 0; values
// at or above the last finite edge land in the final bucket.
func Histogram(values []units.Mtops, edges []float64) []int {
	counts := make([]int, len(edges)-1)
	for _, v := range values {
		placed := false
		for i := len(counts) - 1; i >= 1; i-- {
			if float64(v) >= edges[i] {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[0]++
		}
	}
	return counts
}

// FractionBelow returns the fraction of values strictly below the bound.
func FractionBelow(values []units.Mtops, bound units.Mtops) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v < bound {
			n++
		}
	}
	return float64(n) / float64(len(values))
}

// FractionWithin returns the fraction of values v with lo ≤ v ≤ hi.
func FractionWithin(values []units.Mtops, lo, hi units.Mtops) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v >= lo && v <= hi {
			n++
		}
	}
	return float64(n) / float64(len(values))
}

// CombinedSurvey returns the full ≈700-application population the paper's
// aggregate claims quantify over: the synthetic S&T and DT&E populations
// plus the curated Chapter 4 minima.
func CombinedSurvey() []units.Mtops {
	var out []units.Mtops
	out = append(out, SurveyMtops(STPopulation1994())...)
	out = append(out, SurveyMtops(DTEPopulation(1995))...)
	out = append(out, Minima()...)
	return out
}
