package apps

import (
	"sort"

	"repro/internal/units"
)

// Table6 returns the nine computational technology areas for science and
// technology projects, in the paper's order.
func Table6() []CTA {
	return []CTA{CCM, CEA, CEN, CFD, CSM, CWO, EQM, FMS, SIP}
}

// Table7 returns the four computational functions for developmental test
// and evaluation projects.
func Table7() []CTA {
	return []CTA{DBA, RTDA, RTMS, TA}
}

// Table8 returns the advanced conventional weapons functional areas
// examined in Chapter 4.
func Table8() []string {
	return []string{
		"Aerodynamic vehicle design",
		"Submarine design",
		"Surveillance and target detection and recognition",
		"Survivability, protective structures, and weapons lethality",
	}
}

// Table13 returns the military operations functional areas examined in
// Chapter 4.
func Table13() []string {
	return []string{
		"C4I, target engagement, battle management, and information warfare",
		"Air defense sensor processing",
		"ASW surveillance",
		"Meteorology",
	}
}

// FunctionRow is one row of the design-function tables (9–12): a design
// application and the computational technology areas it draws on.
type FunctionRow struct {
	Function string
	CTAs     []CTA
}

// Table9 returns the aerodynamic vehicle design functions, as printed.
func Table9() []FunctionRow {
	return []FunctionRow{
		{"Airfoils (wings) and airframe", []CTA{CFD}},
		{"Airframe structure", []CTA{CSM}},
		{"Signature reduction", []CTA{CFD, CEA}},
		{"Engines (turbines)", []CTA{CFD}},
		{"Rocket motors", []CTA{CCM}},
	}
}

// Table10 returns the submarine design functions (reconstructed from the
// chapter narrative; the printed table body is omitted in the scan).
func Table10() []FunctionRow {
	return []FunctionRow{
		{"Hull form and hydrodynamic flow", []CTA{CFD}},
		{"Acoustic signature reduction", []CTA{CEA, CSM}},
		{"Structural acoustics and survivability", []CTA{CSM}},
		{"Radiated noise (turbulent flow)", []CTA{CFD}},
		{"Weapons quieting", []CTA{CEA, CSM}},
	}
}

// Table11 returns the surveillance design functions (reconstructed).
func Table11() []FunctionRow {
	return []FunctionRow{
		{"Automatic target recognition templates", []CTA{SIP, CEA}},
		{"Radar signature prediction", []CTA{CEA}},
		{"Acoustic sensor modeling", []CTA{CEA, CWO}},
		{"Non-acoustic ASW sensor physics", []CTA{CEN, SIP}},
		{"Cartography and terrain mapping", []CTA{SIP, DBA}},
	}
}

// Table12 returns the survivability and weapons design functions
// (reconstructed).
func Table12() []FunctionRow {
	return []FunctionRow{
		{"Warhead/structure interaction", []CTA{CSM, CFD}},
		{"Advanced armor and penetrators", []CTA{CSM, CCM}},
		{"Deep penetration weapons", []CTA{CSM, CCM}},
		{"Nuclear blast effects on structures", []CTA{CFD, CSM}},
		{"Directed-energy weapons effects", []CTA{CEA, CCM}},
	}
}

// RequirementRow is one row of the representative-requirements summary
// tables (14 and 15).
type RequirementRow struct {
	Application string
	Min         units.Mtops
	Actual      units.Mtops
	RealTime    bool
}

// Table14 returns the summary of representative computational requirements
// for RDT&E: the curated nuclear, cryptologic, and ACW applications with
// their minimum and in-use performance levels, sorted by minimum.
func Table14() []RequirementRow {
	return requirementRows(func(a Application) bool {
		return a.Mission == NuclearWeapons || a.Mission == Cryptology || a.Mission == ACW
	})
}

// Table15 returns the summary of representative computational requirements
// for military operations.
func Table15() []RequirementRow {
	return requirementRows(func(a Application) bool {
		return a.Mission == MilitaryOperations
	})
}

func requirementRows(pred func(Application) bool) []RequirementRow {
	var out []RequirementRow
	for _, a := range All() {
		if pred(a) {
			out = append(out, RequirementRow{
				Application: a.Name,
				Min:         a.Min,
				Actual:      a.Actual,
				RealTime:    a.RealTime,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Min < out[j].Min })
	return out
}
