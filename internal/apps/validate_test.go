package apps

import "testing"

// TestValidateCatchesViolations injects corrupted records through the
// package dataset and checks every validator branch fires.
func TestValidateCatchesViolations(t *testing.T) {
	orig := applications
	defer func() { applications = orig }()

	inject := func(mutate func(*Application)) error {
		bad := orig[0]
		bad.Name = "injected"
		mutate(&bad)
		applications = append(append([]Application(nil), orig...), bad)
		return Validate()
	}

	cases := map[string]func(*Application){
		"empty name":   func(a *Application) { a.Name = "" },
		"duplicate":    func(a *Application) { a.Name = orig[0].Name },
		"zero min":     func(a *Application) { a.Min = 0 },
		"actual < min": func(a *Application) { a.Min = 100; a.Actual = 50 },
		"year early":   func(a *Application) { a.FirstYear = 1900 },
		"year late":    func(a *Application) { a.FirstYear = 2050 },
		"no CTAs":      func(a *Application) { a.CTAs = nil },
		"bad system":   func(a *Application) { a.ActualName = "no such machine" },
	}
	for name, mutate := range cases {
		if err := inject(mutate); err == nil {
			t.Errorf("%s: validator accepted the corruption", name)
		}
	}
}

func TestMissionStringsExhaustive(t *testing.T) {
	want := map[Mission]string{
		NuclearWeapons:     "nuclear weapons programs",
		Cryptology:         "cryptology",
		ACW:                "advanced conventional weapons",
		MilitaryOperations: "military operations",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("Mission(%d) = %q", int(m), m.String())
		}
	}
}

func TestGranularityStringsExhaustive(t *testing.T) {
	want := map[Granularity]string{
		Embarrassing: "embarrassingly parallel",
		Coarse:       "coarse-grain",
		Medium:       "medium-grain",
		Fine:         "fine-grain",
		NotParallel:  "not parallelizable",
	}
	for g, s := range want {
		if g.String() != s {
			t.Errorf("Granularity(%d) = %q", int(g), g.String())
		}
	}
}

func TestLognormalClipping(t *testing.T) {
	// The clip bounds must hold across the deterministic populations.
	for _, r := range STPopulation1994() {
		if r.Mtops < 1 || r.Mtops > 30000 {
			t.Fatalf("S&T value %v escaped the clip", r.Mtops)
		}
	}
	for _, r := range DTEPopulation(1995) {
		if r.Mtops < 1 || r.Mtops > 15000 {
			t.Fatalf("DT&E value %v escaped the clip", r.Mtops)
		}
	}
}
