// stealth walks the paper's aircraft-signature narrative with live
// physics: the flat-plate RCS model showing why faceting works at X-band
// and fails at VHF (the F-117A vs B-2 shapes), the design-cost regimes
// (VAX-class physical optics vs mainframe-class full-wave), and the
// sequential-vs-simultaneous optimization economics that put the F-22 on
// "the most powerful computer available".
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/design"
	"repro/internal/radar"
)

func main() {
	// 1. One square facet, tilted 30° from the threat.
	fmt.Println("Flat facet (1.5 m), tilted 30° from the radar line of sight:")
	f := radar.Facet{SideM: 1.5, TiltRad: 30 * math.Pi / 180}
	for _, band := range []struct {
		name string
		hz   float64
	}{
		{"X-band fire control (10 GHz)", 10e9},
		{"S-band search (3 GHz)", 3e9},
		{"VHF early warning (150 MHz)", 150e6},
	} {
		sigma, err := f.RCS(band.hz)
		if err != nil {
			log.Fatal(err)
		}
		bw, err := f.BeamwidthRad(band.hz)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-30s  RCS %8.1f dBsm   specular lobe ±%4.1f°\n",
			band.name, radar.DBsm(sigma), bw*180/math.Pi)
	}
	fmt.Println("\nAt X-band the lobe is a degree wide: tilt the panels and the radar sees")
	fmt.Println("nothing. At VHF the lobe covers the sky: faceting stops working, which is")
	fmt.Println("why the B-2's low-band problem forced blended shapes and full-wave analysis.")

	// 2. The design-cost regimes.
	fmt.Println("\nShaping-analysis cost (360 aspect angles):")
	for _, p := range []struct {
		name string
		body float64
		freq float64
	}{
		{"F-117A-class (20 m body, X-band threats)", 20, 10e9},
		{"B-2-class (50 m body, VHF threats)", 50, 150e6},
	} {
		flop, regime, err := radar.DesignCost(p.body, p.freq, 360)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-45s %v, ≈%.1e flop\n", p.name, regime, flop)
	}

	// 3. Sequential vs simultaneous optimization (the F-22 economics).
	const n = 48
	seq, err := design.OptimizeSequential(n, n)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := design.OptimizeSimultaneous(n, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSignature/drag optimization of a 2-parameter airframe:")
	fmt.Printf("  %-14s  %6s evals  tilt %4.1f°  fineness %4.1f  RCS %6.1f dBsm  drag %5.1f  score %6.1f\n",
		"sequential", fmtInt(seq.Evaluations), seq.Best.TiltDeg, seq.Best.Fineness,
		radar.DBsm(seq.Metrics.RCS), seq.Metrics.Drag, seq.Score)
	fmt.Printf("  %-14s  %6s evals  tilt %4.1f°  fineness %4.1f  RCS %6.1f dBsm  drag %5.1f  score %6.1f\n",
		"simultaneous", fmtInt(sim.Evaluations), sim.Best.TiltDeg, sim.Best.Fineness,
		radar.DBsm(sim.Metrics.RCS), sim.Metrics.Drag, sim.Score)
	fmt.Printf("\nThe sequential procedure maximizes stealth and accepts the drag — the\n")
	fmt.Printf("F-117A, which 'operates like a light bomber'. The joint sweep finds the\n")
	fmt.Printf("fighter compromise, at %.0f× the evaluations; on a full CFD/CEA problem\n",
		float64(sim.Evaluations)/float64(seq.Evaluations))
	fmt.Println("that multiplier is what pushed the F-22 onto the most powerful Cray.")
}

func fmtInt(n int) string { return fmt.Sprintf("%d", n) }
