// weather reproduces the meteorology thread of Chapter 4 end to end: it
// runs the real shallow-water dynamical core (sequentially, with
// goroutines, and as a message-passing program, confirming all three agree
// bit-for-bit), then prints the operational scenario table — from the
// 120-km global model a 200-Mtops workstation can run to the 5-km special
// products needing "well over 100,000 Mtops" — and shows what resolution
// each side of an export-control line can reach.
package main

import (
	"fmt"
	"log"

	hpcexport "repro"
	"repro/internal/mpiprog"
	"repro/internal/nwp"
)

func main() {
	// 1. The dynamical core, three ways.
	const n, steps = 64, 40
	seed := func(g *nwp.Grid) { g.AddGaussian(n/2, n/2, 12, 8) }

	seq, err := nwp.NewGrid(n, 100e3)
	if err != nil {
		log.Fatal(err)
	}
	seed(seq)
	dt := seq.MaxStableDt()
	if _, err := seq.Run(steps, dt); err != nil {
		log.Fatal(err)
	}

	par, err := nwp.NewGrid(n, 100e3)
	if err != nil {
		log.Fatal(err)
	}
	seed(par)
	if _, err := par.RunParallel(steps, dt, 4); err != nil {
		log.Fatal(err)
	}

	msg, err := mpiprog.ShallowWater(n, 100e3, steps, 4, seed)
	if err != nil {
		log.Fatal(err)
	}

	same := true
	for k := range seq.H {
		if seq.H[k] != par.H[k] || seq.H[k] != msg[k] {
			same = false
			break
		}
	}
	fmt.Printf("shallow-water core: sequential, goroutine-parallel, and message-passing\n")
	fmt.Printf("runs agree bit-for-bit: %v (%d×%d grid, %d steps)\n\n", same, n, n, steps)

	// 2. The operational scenarios.
	fmt.Println("operational forecasting scenarios (Chapter 4):")
	for _, s := range hpcexport.WeatherScenarios() {
		fmt.Printf("  %s\n", s)
	}

	// 3. The military meaning: what resolution each side of the control
	// line can forecast at. "Clearly, the side with the best
	// understanding of the weather … has significant advantages."
	fmt.Println()
	tmpl := hpcexport.WeatherScenarios()[2] // the 45-km tactical template
	for _, m := range []struct {
		name  string
		mtops hpcexport.Mtops
	}{
		{"200-Mtops workstation", 200},
		{"mid-1995 uncontrollable frontier (4,600)", 4600},
		{"Cray C90/8 (10,625)", 10625},
		{"Cray C916 (21,125)", 21125},
	} {
		res, err := nwp.FinestResolution(tmpl, m.mtops)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-42s → finest tactical resolution ≈ %5.0f km\n", m.name, res)
	}
	fmt.Println("\nThe 45-km tactical product sits just beyond the uncontrollable frontier —")
	fmt.Println("which is why weather prediction anchors the 10,000-Mtops application group.")
}
