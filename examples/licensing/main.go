// licensing walks one machine through the whole regime: it rates a
// configuration under the CTP rules, submits it to every destination tier
// under the threshold in force during the study (1,500 Mtops), then shows
// how the paper's recommended threshold (the mid-1995 lower bound of
// controllability) re-draws the licensing map — the practical payoff of
// the whole analysis.
package main

import (
	"fmt"
	"log"

	hpcexport "repro"
)

func main() {
	// The machine: a maximum-configuration SGI Challenge XL — the kind of
	// system the mid-1990s reviews fought over: rated well above the
	// 1,500-Mtops threshold in force, yet sold by the thousand through
	// dealer networks and upgradable in the field.
	sys, ok := hpcexport.CatalogLookup("SGI Challenge XL")
	if !ok {
		log.Fatal("Challenge XL missing from catalog")
	}
	fmt.Printf("the machine: %s\n\n", sys)

	destinations := []string{"Japan", "France", "Sweden", "India", "Iran"}

	for _, threshold := range []hpcexport.Mtops{1500, 4600} {
		fmt.Printf("under a %s threshold:\n", threshold)
		for _, dest := range destinations {
			d, err := hpcexport.EvaluateLicense(hpcexport.ExportLicense{
				Destination: dest,
				CTP:         sys.CTP,
				EndUse:      "university computing center",
			}, threshold)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s %v", dest, d.Outcome)
			if n := len(d.Safeguards); n > 0 {
				fmt.Printf(" (%d safeguard conditions)", n)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	fmt.Println("At 1,500 Mtops the machine is a licensed supercomputer everywhere outside")
	fmt.Println("the supplier states; at the framework's 4,600 Mtops lower bound the same")
	fmt.Println("machine — which several thousand dealers sell and users upgrade in the")
	fmt.Println("field — needs no supercomputer license at all. The regulation stops")
	fmt.Println("pretending to control the uncontrollable, which is the paper's point.")
}
