// f22design walks the paper's marquee application example — Figure 1's
// "Range of Computational Power for the F-22 Design" — and the aircraft
// design lineage around it (F-117A, B-2, F-22, JAST), showing how the
// minimum requirement, the system actually used, and the most powerful
// system available relate, and what each design could have been done on.
package main

import (
	"fmt"
	"log"

	hpcexport "repro"
)

// lineage is the stealth-aircraft design sequence of Chapter 4.
var lineage = []string{
	"F-117A design",
	"B-2 (ATB) design",
	"F-22 design (simultaneous CEA/CFD optimization)",
	"JAST candidate design",
}

func main() {
	fmt.Println("Aircraft design and the computing it required")
	fmt.Println("=============================================")
	for _, name := range lineage {
		app, ok := hpcexport.AppLookup(name)
		if !ok {
			log.Fatalf("application %q missing", name)
		}
		max, _ := hpcexport.MostPowerfulAsOf(float64(app.FirstYear), nil)
		fmt.Printf("\n%s (%d)\n", app.Name, app.FirstYear)
		fmt.Printf("  minimum:  %s\n", app.Min)
		fmt.Printf("  actual:   %s (%s)\n", app.Actual, orDash(app.ActualName))
		fmt.Printf("  maximum available that year: %s (%s)\n", max.CTP, max.Name)
		fmt.Printf("  %s\n", app.Notes)

		// The export-control question: could a country of concern have
		// bought the computing for this on the open, uncontrollable
		// market at the time of the study?
		frontier, _, ok := hpcexport.Frontier(1995.45, hpcexport.FrontierOptions{})
		if !ok {
			log.Fatal("no frontier")
		}
		if app.Min <= frontier {
			fmt.Printf("  → minimum below the mid-1995 frontier (%s): controls cannot deny this design\n", frontier)
		} else {
			fmt.Printf("  → minimum above the mid-1995 frontier (%s): still deniable by controls\n", frontier)
		}
	}

	// Figure 1 proper.
	fmt.Println()
	fig, err := hpcexport.Figure(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig)
}

func orDash(s string) string {
	if s == "" {
		return "uncataloged"
	}
	return s
}
