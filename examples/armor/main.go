// armor exercises the survivability-and-lethality substrate: the 1-D
// Lagrangian hydrocode running planar impacts at increasing velocity,
// the elastic acoustic check, and the production run-class economics that
// explain why these applications lived on the biggest Crays — and what
// the same runs would cost on uncontrollable hardware.
package main

import (
	"fmt"
	"log"

	"repro/internal/hydro"
)

func main() {
	fmt.Println("Planar impact on steel (1-D Lagrangian hydrocode)")
	fmt.Println("==================================================")
	fmt.Printf("%10s  %14s  %14s  %14s\n",
		"v (m/s)", "peak σ (GPa)", "acoustic (GPa)", "plastic work (J)")
	for _, v := range []float64{10, 50, 100, 200, 400, 800} {
		bar, err := hydro.NewBar(hydro.Steel, 200, 1.0)
		if err != nil {
			log.Fatal(err)
		}
		bar.SetImpact(0.5, v)
		if err := bar.Run(150); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.0f  %14.2f  %14.2f  %14.1f\n",
			v, bar.PeakStress()/1e9, hydro.AcousticImpactStress(hydro.Steel, v)/1e9,
			bar.PlasticW)
	}
	fmt.Println("\nBelow yield the peak tracks the acoustic impedance prediction ρc·v/2;")
	fmt.Println("above it the stress sits on the yield surface and the excess becomes")
	fmt.Println("plastic work — the penetration mechanics the production codes resolve in 3-D.")

	fmt.Println("\nProduction run classes (paper hours on the Cray Model 2, rescaled):")
	fmt.Printf("%-38s  %12s  %12s  %16s\n",
		"class", "Model 2 (h)", "C916 (h)", "frontier SMP (h)")
	for _, c := range hydro.Classes() {
		c916, err := c.HoursOn(21125)
		if err != nil {
			log.Fatal(err)
		}
		smp, err := c.HoursOn(4600)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-38s  %12.0f  %12.1f  %16.1f\n", c, c.Hours(), c916, smp)
	}
	fmt.Println("\nEverything but the optimization campaigns is schedule, not feasibility:")
	fmt.Println("a country of concern with mid-1990s uncontrollable SMPs runs the same")
	fmt.Println("models, just more slowly — the paper's core finding about this mission.")
}
