// clusters reproduces the Chapter 3 cluster argument end to end: it rates
// a workstation cluster and a shared-memory machine of comparable
// aggregate hardware under the CTP rules, then simulates both on the
// granularity workload suite — showing why "a threshold based on
// workstation clusters should not equally be applied to shared-memory
// systems".
package main

import (
	"fmt"
	"log"

	hpcexport "repro"
)

func main() {
	// Sixteen identical processors, three packagings.
	alpha := hpcexport.Microprocessors64()[2].Element // Alpha 21064-150

	smpRated := hpcexport.NewSMP("16-way SMP", alpha, 16)
	clRated := hpcexport.NewCluster("16-node Ethernet farm", alpha, 16,
		hpcexport.Interconnect{Name: "Ethernet", Bandwidth: 1.25, Latency: 1000})

	smpCTP, err := smpRated.CTP()
	if err != nil {
		log.Fatal(err)
	}
	clCTP, err := clRated.CTP()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The same sixteen processors, rated:")
	fmt.Printf("  %-24s %s\n", smpRated.Name, smpCTP)
	fmt.Printf("  %-24s %s\n", clRated.Name, clCTP)
	fmt.Println()

	// Now measure what they deliver.
	fmt.Println("Simulated speedup at 16 processors:")
	fmt.Printf("  %-28s", "workload")
	fleet := hpcexport.SimFleet(16)
	smp, eth := fleet[0], fleet[len(fleet)-1]
	for _, m := range []hpcexport.Machine{smp, eth} {
		fmt.Printf("  %24s", m.Name)
	}
	fmt.Println()
	for _, w := range hpcexport.WorkloadSuite() {
		fmt.Printf("  %-28s", w.Name())
		for _, m := range []hpcexport.Machine{smp, eth} {
			r, err := hpcexport.RunSim(m, w)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %17.1fx (%2.0f%%)", r.Speedup, r.Efficiency*100)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("The cluster matches the SMP only on the coarse-grain work at the top;")
	fmt.Println("on stencils and solvers it saturates, which is why the paper lets SMP")
	fmt.Println("architectures — not clusters — set the lower bound for control thresholds.")
}
