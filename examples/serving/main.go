// Serving the framework: start an hpcexportd query service in-process on
// an ephemeral port, ask it the questions a licensing desk would ask —
// single decisions, a batch, a catalog query, the framework snapshot —
// through the typed Go client, and drain it cleanly.
package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serving:", err)
		os.Exit(1)
	}
}

func run() error {
	s, err := serve.New(serve.Config{Clock: time.Now})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		return err
	}
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	api, err := client.New("http://"+ln.Addr().String(), nil)
	if err != nil {
		stop()
		return err
	}
	qctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// One decision: the C916 sale to India the paper's regime machinery
	// adjudicates, under the threshold in force at the study date.
	d, err := api.License(qctx, serve.LicenseRequest{System: "Cray C916", Destination: "India"})
	if err != nil {
		stop()
		return err
	}
	fmt.Printf("%s (%.0f Mtops) → %s [%s]: %s\n", d.System, d.CTPMtops, d.Destination, d.Tier, d.Outcome)

	// A batch: the same machine across the five tiers.
	dests := []string{"japan", "france", "sweden", "india", "iran"}
	reqs := make([]serve.LicenseRequest, len(dests))
	for i, dest := range dests {
		reqs[i] = serve.LicenseRequest{CTP: 21125, Destination: dest}
	}
	items, err := api.LicenseBatch(qctx, reqs)
	if err != nil {
		stop()
		return err
	}
	for i, it := range items {
		if it.Error != "" {
			fmt.Printf("  %-8s → error: %s\n", dests[i], it.Error)
			continue
		}
		fmt.Printf("  %-8s → %s (%d safeguards)\n", dests[i], it.Decision.Outcome, len(it.Decision.Safeguards))
	}

	// A dataset query: indigenous Russian systems above 100 Mtops.
	cat, err := api.Catalog(qctx, serve.CatalogQuery{Origin: "russia", MinCTP: 100})
	if err != nil {
		stop()
		return err
	}
	fmt.Printf("Russian indigenous systems at or above 100 Mtops: %d\n", cat.Count)

	// The framework snapshot the whole service exists to serve.
	snap, err := api.Threshold(qctx, 0, false)
	if err != nil {
		stop()
		return err
	}
	fmt.Printf("snapshot %.2f: lower bound %.0f Mtops (%s), valid range %v\n",
		snap.Date, snap.LowerBoundMtops, snap.LowerBoundSystem, snap.Range != nil)

	h, err := api.Healthz(qctx)
	if err != nil {
		stop()
		return err
	}
	fmt.Printf("served %d requests; decision cache %d entries (%d hits, %d misses)\n",
		h.Requests, h.Decisions.Size, h.Decisions.Hits, h.Decisions.Misses)

	// The telemetry the daemon kept about all of the above: the metric
	// registry behind /metrics, and the trace of the latest decision.
	ms, err := api.Metrics(qctx)
	if err != nil {
		stop()
		return err
	}
	var answered float64
	for _, m := range ms.Metrics {
		if m.Name == "http_requests_total" {
			answered += m.Value
		}
	}
	fmt.Printf("telemetry: %d instruments; %.0f requests recorded by route and class\n",
		len(ms.Metrics), answered)
	tr, err := api.Traces(qctx)
	if err != nil {
		stop()
		return err
	}
	if tr.Count > 0 {
		last := tr.Traces[0]
		fmt.Printf("latest trace (request %s): %d spans, rooted at %q\n",
			last.TraceID, len(last.Spans), last.Spans[0].Name)
	}

	stop()
	return <-done
}
