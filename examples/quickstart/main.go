// Quickstart: rate a machine under the CTP rules, check it against the
// uncontrollability frontier, and run the full June 1995 threshold
// analysis — the library's three core moves in thirty lines.
package main

import (
	"fmt"
	"log"

	hpcexport "repro"
)

func main() {
	// 1. Rate a machine: a 12-way Alpha SMP, the class that was eroding
	// the supercomputer definition from below.
	alpha := hpcexport.Microprocessors64()[2] // DEC Alpha 21064-150
	server := hpcexport.NewSMP("12-way Alpha server", alpha.Element, 12)
	rating, err := server.CTP()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CTP of %s: %s\n", server.Name, rating)

	// 2. Where is the uncontrollability frontier in mid-1995?
	frontier, system, ok := hpcexport.Frontier(1995.5, hpcexport.FrontierOptions{})
	if !ok {
		log.Fatal("no frontier")
	}
	fmt.Printf("mid-1995 frontier: %s (set by %s)\n", frontier, system.Name)

	// 3. Run the paper's threshold analysis (Figure 11).
	snap, err := hpcexport.TakeSnapshot(1995.45)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("premises hold: %v\n", snap.Valid())
	fmt.Printf("lower bound %s, ceiling %s\n", snap.LowerBound, snap.MaxAvailable)
	if rec, ok := snap.Recommend(hpcexport.ControlMaximal); ok {
		fmt.Printf("control-maximal threshold: %s\n", rec)
	}
	if rec, ok := snap.Recommend(hpcexport.ApplicationDriven); ok {
		fmt.Printf("application-driven threshold: %s\n", rec)
	}
}
