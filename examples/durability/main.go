// Durability and warm-start: run an hpcexportd service over a decision
// log, watch the commit stream for the regime transition a threshold
// override causes, kill the service without ceremony, and restart it
// over the same directory — the replayed cache answers the first
// requests byte-identically, before any recomputation.
package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "durability:", err)
		os.Exit(1)
	}
}

// startDaemon opens the decision log in dir and serves over it on an
// ephemeral port, returning the pieces the walkthrough needs to drive
// and later drain it.
func startDaemon(dir string) (*wal.Log, net.Listener, context.CancelFunc, chan error, error) {
	l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncAlways})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	s, err := serve.New(serve.Config{Clock: time.Now, WAL: l})
	if err != nil {
		_ = l.Close()
		return nil, nil, nil, nil, err
	}
	ln, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		_ = l.Close()
		return nil, nil, nil, nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	return l, ln, stop, done, nil
}

// firstAnswers asks the daemon the walkthrough's queries and returns the
// raw response bodies plus whether every answer came from the cache.
func firstAnswers(base string) (bodies []string, allHits bool, err error) {
	allHits = true
	for _, q := range []string{
		"/v1/license?ctp=21125&dest=india&endUse=modeling",
		"/v1/license?ctp=21125&dest=india&endUse=modeling&threshold=7000",
		"/v1/license?system=Cray+C916&dest=france",
	} {
		resp, err := http.Get(base + q)
		if err != nil {
			return nil, false, err
		}
		b, rerr := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if rerr != nil {
			return nil, false, rerr
		}
		if resp.Header.Get("X-Cache") != "hit" {
			allHits = false
		}
		bodies = append(bodies, string(b))
	}
	return bodies, allHits, nil
}

func run() error {
	dir, err := os.MkdirTemp("", "hpcwal-example-")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	log, ln, stop, done, err := startDaemon(dir)
	if err != nil {
		return err
	}
	base := "http://" + ln.Addr().String()
	api, err := client.New(base, nil)
	if err != nil {
		stop()
		return err
	}

	// Subscribe to the commit stream before driving traffic: the regime
	// transition the threshold override below causes arrives as a watch
	// event with the commit's sequence number.
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	events := make(chan client.WatchEvent, 1)
	go func() {
		_ = api.Watch(wctx, 0, func(ev client.WatchEvent) error {
			if ev.Kind == wal.EventRegime {
				events <- ev
				return client.ErrWatchStopped
			}
			return nil
		})
	}()
	time.Sleep(100 * time.Millisecond) // let the stream establish

	// Three decisions: two under the study-date regime, one under an
	// overridden 7000-Mtops threshold — a regime transition on the log.
	before, _, err := firstAnswers(base)
	if err != nil {
		stop()
		return err
	}
	fmt.Printf("decided %d queries; log: %+v\n", len(before), log.Stats())
	select {
	case ev := <-events:
		fmt.Printf("watch: regime transition %.0f -> %.0f Mtops at commit %d\n",
			ev.PrevMtops, ev.Mtops, ev.Seq)
	case <-time.After(5 * time.Second):
		stop()
		return fmt.Errorf("no regime-transition event arrived")
	}

	// Drain and reopen over the same directory: the warm-started daemon
	// must answer the same queries from its replayed cache, byte for byte.
	stop()
	if err := <-done; err != nil {
		return err
	}
	if err := log.Close(); err != nil {
		return err
	}

	log2, ln2, stop2, done2, err := startDaemon(dir)
	if err != nil {
		return err
	}
	defer func() { _ = log2.Close() }()
	rec := log2.Recovery()
	fmt.Printf("restart: recovered %d records (%d segments, %d torn, %d corrupt)\n",
		len(rec.Records), rec.Segments, rec.TornRecords, rec.CorruptRecords)

	after, allHits, err := firstAnswers("http://" + ln2.Addr().String())
	if err != nil {
		stop2()
		return err
	}
	identical := len(after) == len(before)
	for i := range after {
		if identical && after[i] != before[i] {
			identical = false
		}
	}
	fmt.Printf("warm start: first answers cache hits=%v, byte-identical=%v\n", allHits, identical)
	if !allHits || !identical {
		stop2()
		return fmt.Errorf("warm-start contract violated")
	}
	stop2()
	return <-done2
}
