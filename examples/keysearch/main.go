// keysearch demonstrates the Chapter 4 cryptology finding with live code:
// a brute-force attack on a toy cipher, run with increasing worker
// parallelism. "A brute force attack is tailor-made for parallel
// processors" — each worker sweeps its share of the keyspace without
// reference to the others, so any pile of uncontrollable workstations is
// as good as a supercomputer, and cryptanalysis stops justifying HPC
// export controls.
package main

import (
	"fmt"
	"log"
	"runtime"

	hpcexport "repro"
)

func main() {
	// A secret key hidden in a 2²² keyspace (tiny, so the demo is quick;
	// the scaling argument is identical at any size).
	const secret = 0x2d51f3
	const space = 1 << 22

	pairs := hpcexport.MakeKeyPairs(secret,
		0x6d65737361676531, // known plaintext blocks
		0x6d65737361676532,
	)

	fmt.Printf("searching %d keys for the planted secret (%d CPUs available)\n\n",
		space, runtime.NumCPU())
	fmt.Printf("%8s  %12s  %14s  %10s\n", "workers", "found", "keys/second", "seconds")

	var base float64
	for _, workers := range []int{1, 2, 4, 8} {
		res, err := hpcexport.KeySearch(pairs, 0, space, workers)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Found || res.Key != secret {
			log.Fatalf("search failed: %+v", res)
		}
		if base == 0 {
			base = res.Seconds
		}
		fmt.Printf("%8d  %12v  %14.0f  %10.3f\n",
			workers, res.Found, res.KeysPerSecond(), res.Seconds)
	}

	fmt.Println("\nOn a multi-core machine the throughput scales with workers; on any")
	fmt.Println("cluster of uncontrollable workstations it scales with machines. That")
	fmt.Println("is why the study concludes cryptologic applications 'can no longer be")
	fmt.Println("used as a basis for establishing an export control regime'.")
}
