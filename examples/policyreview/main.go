// policyreview performs the study's key procedural recommendation —
// "perform annual reviews of the export control regime, applying a
// methodology that is open, repeatable, and based on reliable data" — by
// running the threshold framework's Review procedure from 1993 through
// 1999 and printing what each year's board would see: the bounds, the
// recommendation, and the warnings (premise erosion, thresholds
// overtaken).
package main

import (
	"fmt"
	"log"

	hpcexport "repro"
)

func main() {
	fmt.Println("Annual export-control reviews, 1993–1999")
	fmt.Println("=========================================")

	entries, err := hpcexport.AnnualReview(1993.5, 1999.5, hpcexport.ControlMaximal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6s  %14s  %14s  %10s  %-24s\n",
		"year", "lower bound", "recommended", "apps above", "frontier system")
	for _, e := range entries {
		s := e.Snapshot
		fmt.Printf("%6.1f  %14s  %14s  %10d  %-24s\n",
			s.Date, s.LowerBound.String(), e.Threshold.String(), len(s.Above),
			s.LowerBoundSystem.Name)
		for _, w := range e.Warnings {
			fmt.Printf("        ⚠ %s\n", w)
		}
	}

	// The longer-term conjecture: how much of the application base the
	// frontier has already overtaken, year by year.
	fmt.Println("\nErosion of premise one (share of Chapter 4 applications below the frontier):")
	for year := 1993.5; year <= 1999.5; year++ {
		cov, err := hpcexport.CoverageBelowFrontier(year)
		if err != nil {
			log.Fatal(err)
		}
		bar := ""
		for i := 0; i < int(cov*40); i++ {
			bar += "#"
		}
		fmt.Printf("%6.1f  %5.1f%%  %s\n", year, cov*100, bar)
	}
	fmt.Println("\nThe majority of national security applications are already possible at")
	fmt.Println("uncontrollable levels, or will be so before the end of the decade.")
}
