// Cross-package integration tests: end-to-end flows a policy analyst or a
// downstream engineer would actually run, crossing the package seams the
// unit tests respect.
package hpcexport

import (
	"math"
	"strings"
	"testing"

	"repro/internal/controllability"
	"repro/internal/ctp"
	"repro/internal/ctpgap"
	"repro/internal/future"
	"repro/internal/nwp"
	"repro/internal/regime"
	"repro/internal/safeguards"
	"repro/internal/threshold"
	"repro/internal/units"
)

// TestLicenseFollowsSnapshot runs the full policy pipeline: take the June
// 1995 snapshot, adopt its control-maximal recommendation as the
// regulation, and license a machine under it — the workflow the study was
// commissioned to enable.
func TestLicenseFollowsSnapshot(t *testing.T) {
	snap, err := threshold.Take(1995.45)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := snap.Recommend(threshold.ControlMaximal)
	if !ok {
		t.Fatal("no recommendation")
	}

	// A Challenge XL (2,900 Mtops) to Sweden: licensed supercomputer
	// under the old 1,500 threshold, free under the framework's
	// recommendation.
	challenge, ok := CatalogLookup("SGI Challenge XL")
	if !ok {
		t.Fatal("catalog missing Challenge XL")
	}
	under1500, err := safeguards.Evaluate(safeguards.License{
		Destination: "Sweden", CTP: challenge.CTP}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	underRec, err := safeguards.Evaluate(safeguards.License{
		Destination: "Sweden", CTP: challenge.CTP}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if under1500.Outcome != safeguards.Approve {
		t.Errorf("Challenge under 1,500: %v", under1500.Outcome)
	}
	if underRec.Outcome != safeguards.NoLicense {
		t.Errorf("Challenge under the recommendation: %v", underRec.Outcome)
	}

	// A C916 to the same destination stays safeguarded either way.
	c916, _ := CatalogLookup("Cray C916")
	d, err := safeguards.Evaluate(safeguards.License{Destination: "Sweden", CTP: c916.CTP}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != safeguards.Approve || len(d.Safeguards) == 0 {
		t.Errorf("C916 under the recommendation: %v", d)
	}
}

// TestSpecRatedAgainstFrontier: describe a machine as an exporter would
// (JSON spec), rate it, and place it against the frontier and the
// application stalactites.
func TestSpecRatedAgainstFrontier(t *testing.T) {
	spec := ctp.SystemSpec{
		Name:      "proposed export",
		Processor: "R8000-75",
		Count:     18,
		Memory:    "shared",
	}
	sys, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	rating, err := sys.CTP()
	if err != nil {
		t.Fatal(err)
	}
	frontier, _, ok := controllability.Frontier(1995.45, controllability.Options{})
	if !ok {
		t.Fatal("no frontier")
	}
	// An 18-way R8000 machine rates within a factor of 2 of the
	// PowerChallenge XL's published class and near the frontier either way.
	if rating < frontier/2 || rating > frontier*2 {
		t.Errorf("18-way R8000 rating %v implausibly far from the frontier %v", rating, frontier)
	}
	// Applications it cannot serve: everything above its rating.
	stranded := AppsAboveBound(rating)
	if len(stranded) == 0 {
		t.Error("no applications above an SMP-class machine; dataset broken")
	}
}

// TestTimelineConsistentWithReview: the regime package's verdicts and the
// threshold package's annual review tell the same story about 1,500 Mtops.
func TestTimelineConsistentWithReview(t *testing.T) {
	entries, err := threshold.Review(1994.5, 1995.5, threshold.ControlMaximal)
	if err != nil {
		t.Fatal(err)
	}
	// The review's 1995 lower bound exceeds 1,500…
	last := entries[len(entries)-1]
	if last.Snapshot.LowerBound <= 1500 {
		t.Errorf("review lower bound %v; should exceed the 1994 threshold", last.Snapshot.LowerBound)
	}
	// …and the regime evaluation agrees the threshold is under water.
	var e1500 regime.Event
	for _, e := range regime.Timeline() {
		if e.Kind == regime.Adopted && e.Threshold == 1500 {
			e1500 = e
		}
	}
	v := regime.EvaluateAt(e1500, 1995.45, controllability.Options{})
	if v.Viable {
		t.Error("regime evaluation disagrees with the review about 1,500 Mtops")
	}
}

// TestWeatherAnchorsThresholdStory: the NWP cost model, the application
// record, and the snapshot agree about tactical weather prediction.
func TestWeatherAnchorsThresholdStory(t *testing.T) {
	app, ok := AppLookup("Tactical weather prediction (45 km)")
	if !ok {
		t.Fatal("application missing")
	}
	modeled := float64(nwp.Tactical45.RequiredMtops())
	stated := float64(app.Min)
	if math.Abs(modeled-stated)/stated > 0.25 {
		t.Errorf("cost model %v vs stated minimum %v diverge >25%%", modeled, stated)
	}
	snap, err := threshold.Take(1995.45)
	if err != nil {
		t.Fatal(err)
	}
	if app.Min <= snap.LowerBound {
		t.Error("tactical weather below the frontier; it must anchor the military-operations cluster")
	}
	mo, ok := snap.FirstCluster(threshold.MilOps)
	if !ok {
		t.Fatal("no military-operations cluster")
	}
	found := false
	for _, a := range mo.Apps {
		if a.Name == app.Name {
			found = true
		}
	}
	if !found {
		t.Error("tactical weather not in the military-operations cluster")
	}
}

// TestGapAndFutureAgree: the ctpgap measurements and the future
// projection both say the same thing about commodity building blocks —
// they deliver real performance that the rating rules barely see, and
// they take over the high-end base.
func TestGapAndFutureAgree(t *testing.T) {
	rows, err := ctpgap.Analyze(16)
	if err != nil {
		t.Fatal(err)
	}
	var clusterEP, smpEP float64
	for _, r := range rows {
		if !strings.Contains(r.Workload, "key search") {
			continue
		}
		switch {
		case strings.Contains(r.Machine, "Ethernet"):
			clusterEP = r.PerMtops
		case strings.Contains(r.Machine, "SMP"):
			smpEP = r.PerMtops
		}
	}
	if clusterEP <= smpEP {
		t.Error("rating rules fully capture cluster capability; the composition worry would be moot")
	}
	o, err := future.Project(1992, 1999, 2010)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(o.CompositionErodes, 1) {
		t.Error("no composition erosion despite under-rated commodity blocks")
	}
}

// TestUnitsFlowThroughFacade: a Mtops value survives parse → snapshot
// comparison → license decision without unit confusion.
func TestUnitsFlowThroughFacade(t *testing.T) {
	v, err := units.ParseMtops("4,600 Mtops")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := TakeSnapshot(1995.45)
	if err != nil {
		t.Fatal(err)
	}
	if v != snap.LowerBound {
		t.Errorf("parsed %v != snapshot bound %v", v, snap.LowerBound)
	}
	d, err := EvaluateLicense(ExportLicense{Destination: "France", CTP: v}, v)
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != safeguards.Approve {
		t.Errorf("at-threshold sale to an ally: %v", d.Outcome)
	}
}
