// hpcloadgen drives a running hpcexportd with a sustained, reproducible
// license workload and reports throughput and tail latency — the
// cluster-era figure of merit the microbenchmarks in BENCH_baseline.json
// cannot see. It is the measurement half of the zero-allocation license
// hot path: BENCH_throughput.json is produced by this tool.
//
// Two load models:
//
//	-mode closed    N workers (-conc) issue requests back-to-back: the
//	                classic closed loop, measuring peak sustainable qps.
//	-mode open      arrivals are scheduled at a fixed rate (-qps) and
//	                latency is measured from the scheduled arrival time,
//	                so queueing delay under overload is charged to the
//	                tail instead of silently thinning the arrival stream
//	                (no coordinated omission).
//
// The request mix is generated deterministically from -seed over the
// system catalog, destination tiers, and end-use strings: the same seed
// always produces the same -mix distinct requests in the same order, so
// two runs against the same daemon exercise identical key populations.
// A -warmup phase runs the same mix unrecorded first, which both fills
// the decision cache and steadies the connection pool.
//
// Scenarios (comma-separated in -scenario):
//
//	get     warm GET /v1/license with query parameters
//	post    single-decision POST /v1/license
//	batch   POST /v1/license with a -batch-size request batch
//
// Usage:
//
//	hpcloadgen -serve http://localhost:8095                 # all scenarios
//	hpcloadgen -scenario batch -conc 32 -duration 10s
//	hpcloadgen -mode open -qps 5000 -scenario get
//	hpcloadgen -o BENCH_throughput.json                     # write baseline
//	hpcloadgen -against BENCH_throughput.json -tolerance 0.9
//	hpcloadgen -prefix prechange_                           # namespace keys
//
// Output is a JSON object keyed by scenario: requests, errors, qps,
// p50/p99 nanoseconds (from an internal/obs power-of-two histogram, so
// quantiles are order-of-magnitude bounds), and client-side allocations
// per request (runtime.MemStats delta across the measured phase — the
// generator's own cost, reported so codec regressions on the client path
// are visible too). With -against, shared scenarios are compared by qps
// and the run fails if any falls below (1 - tolerance) of the baseline.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/units"
)

// Result is one scenario's measurement.
type Result struct {
	Mode             string  `json:"mode"`
	Requests         uint64  `json:"requests"`
	Errors           uint64  `json:"errors"`
	QPS              float64 `json:"qps"`
	P50Ns            uint64  `json:"p50_ns"`
	P99Ns            uint64  `json:"p99_ns"`
	AllocsPerRequest float64 `json:"allocs_per_request"`
}

// workload is one scenario's precomputed request population: either GET
// targets or POST bodies, never both.
type workload struct {
	name    string
	targets []string // GET URLs
	postURL string   // POST endpoint when bodies is the population
	bodies  [][]byte // POST bodies for /v1/license
}

// destinations spans the safeguard tiers so the mix exercises every row
// of the decision table.
var destinations = []string{
	"japan", "france", "germany", "india", "israel", "brazil",
	"china", "russia", "egypt", "south korea", "iran", "poland",
}

var endUses = []string{
	"", "weather modeling", "crash simulation", "reservoir modeling",
	"computational chemistry", "aerodynamics",
}

func main() {
	var (
		base      = flag.String("serve", "http://localhost:8095", "base URL of the daemon under load")
		mode      = flag.String("mode", "closed", "load model: closed (back-to-back workers) or open (fixed arrival rate)")
		conc      = flag.Int("conc", 16, "closed-loop workers / open-loop max in-flight")
		qps       = flag.Float64("qps", 2000, "open-loop target arrival rate")
		duration  = flag.Duration("duration", 5*time.Second, "measured phase length per scenario")
		warmup    = flag.Duration("warmup", time.Second, "unrecorded warmup length per scenario")
		seed      = flag.Uint64("seed", 1, "request-mix seed; same seed, same mix")
		scenarios = flag.String("scenario", "get,post,batch", "comma-separated scenarios: get, post, batch")
		batchSize = flag.Int("batch-size", 64, "requests per batch in the batch scenario")
		mix       = flag.Int("mix", 256, "distinct requests in the generated population")
		prefix    = flag.String("prefix", "", "prefix for output keys (e.g. prechange_)")
		out       = flag.String("o", "", "write results to this file instead of stdout")
		against   = flag.String("against", "", "baseline file to compare against (optional)")
		tolerance = flag.Float64("tolerance", 0, "fail if a shared scenario's qps falls below (1-tolerance) of the baseline; 0 = report only")
	)
	flag.Parse()
	if *mode != "closed" && *mode != "open" {
		fmt.Fprintf(os.Stderr, "hpcloadgen: unknown -mode %q (want closed or open)\n", *mode)
		os.Exit(2)
	}
	if *conc < 1 || *batchSize < 1 || *mix < 1 {
		fmt.Fprintln(os.Stderr, "hpcloadgen: -conc, -batch-size, and -mix must be at least 1")
		os.Exit(2)
	}

	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			DialContext:         (&net.Dialer{Timeout: 5 * time.Second, KeepAlive: 30 * time.Second}).DialContext,
			MaxIdleConns:        *conc * 2,
			MaxIdleConnsPerHost: *conc * 2,
			IdleConnTimeout:     90 * time.Second,
		},
	}

	results := map[string]Result{}
	for _, name := range strings.Split(*scenarios, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		w, err := buildWorkload(name, *base, *seed, *mix, *batchSize)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpcloadgen:", err)
			os.Exit(2)
		}
		r := run(client, w, *mode, *conc, *qps, *warmup, *duration)
		results[*prefix+name] = r
		fmt.Fprintf(os.Stderr, "%-18s %s  %9.0f qps  p50 %8s  p99 %8s  %6.1f allocs/req  (%d requests, %d errors)\n",
			*prefix+name, *mode, r.QPS,
			time.Duration(r.P50Ns), time.Duration(r.P99Ns),
			r.AllocsPerRequest, r.Requests, r.Errors)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "hpcloadgen: no scenarios selected")
		os.Exit(2)
	}

	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpcloadgen:", err)
		os.Exit(2)
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "hpcloadgen:", err)
			os.Exit(2)
		}
	} else {
		os.Stdout.Write(blob)
	}

	if *against != "" {
		if !compare(results, *against, *tolerance) {
			os.Exit(1)
		}
	}
}

// buildWorkload generates a scenario's deterministic request population.
// Every draw comes from the seeded splitmix64 stream, so the population
// is a pure function of (seed, mix, batch size).
func buildWorkload(name, base string, seed uint64, mix, batchSize int) (*workload, error) {
	systems := catalog.All()
	next := fault.Stream(seed)
	pick := func(n int) int { return int(next() * float64(n)) }
	genReq := func() serve.LicenseRequest {
		var req serve.LicenseRequest
		if pick(4) == 0 { // a quarter of the mix resolves by catalog name
			req.System = systems[pick(len(systems))].Name
		} else {
			req.CTP = serve.CTPValue(float64(100 + pick(500000)))
		}
		req.Destination = destinations[pick(len(destinations))]
		req.EndUse = endUses[pick(len(endUses))]
		if pick(8) == 0 { // occasionally pin an explicit threshold
			req.Threshold = serve.CTPValue(float64(units.Mtops(1500 + pick(9000))))
		}
		return req
	}

	w := &workload{name: name, postURL: base + "/v1/license"}
	switch name {
	case "get":
		for i := 0; i < mix; i++ {
			req := genReq()
			var sb strings.Builder
			sb.WriteString(base)
			sb.WriteString("/v1/license?")
			if req.System != "" {
				sb.WriteString("system=")
				sb.WriteString(strings.ReplaceAll(req.System, " ", "+"))
			} else {
				fmt.Fprintf(&sb, "ctp=%g", float64(req.CTP))
			}
			fmt.Fprintf(&sb, "&dest=%s", strings.ReplaceAll(req.Destination, " ", "+"))
			if req.EndUse != "" {
				fmt.Fprintf(&sb, "&endUse=%s", strings.ReplaceAll(req.EndUse, " ", "+"))
			}
			if req.Threshold != 0 {
				fmt.Fprintf(&sb, "&threshold=%g", float64(req.Threshold))
			}
			w.targets = append(w.targets, sb.String())
		}
	case "post":
		for i := 0; i < mix; i++ {
			req := genReq()
			body, ok := serve.AppendLicenseRequest(nil, &req)
			if !ok {
				return nil, fmt.Errorf("scenario post: unencodable generated request %+v", req)
			}
			w.bodies = append(w.bodies, body)
		}
	case "batch":
		for i := 0; i < mix; i++ {
			reqs := make([]serve.LicenseRequest, batchSize)
			for j := range reqs {
				reqs[j] = genReq()
			}
			body, ok := serve.AppendBatchRequest(nil, reqs)
			if !ok {
				return nil, fmt.Errorf("scenario batch: unencodable generated batch")
			}
			w.bodies = append(w.bodies, body)
		}
	default:
		return nil, fmt.Errorf("unknown scenario %q (want get, post, or batch)", name)
	}
	return w, nil
}

// issue sends the i-th request of the population and reports success.
func (w *workload) issue(client *http.Client, i int) bool {
	var (
		resp *http.Response
		err  error
	)
	if w.targets != nil {
		resp, err = client.Get(w.targets[i%len(w.targets)])
	} else {
		body := w.bodies[i%len(w.bodies)]
		resp, err = client.Post(w.postURL, "application/json", bytes.NewReader(body))
	}
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// run measures one scenario under the chosen load model.
func run(client *http.Client, w *workload, mode string, conc int, qps float64, warmup, duration time.Duration) Result {
	runPhase := func(d time.Duration, record bool, hist *obs.Histogram, reqs, errs *atomic.Uint64) {
		deadline := time.Now().Add(d)
		if mode == "open" && record {
			runOpen(client, w, conc, qps, deadline, hist, reqs, errs)
			return
		}
		var wg sync.WaitGroup
		for g := 0; g < conc; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				i := g * 7919 // co-prime stride start so workers spread over the mix
				for time.Now().Before(deadline) {
					start := time.Now()
					ok := w.issue(client, i)
					if record {
						hist.ObserveDuration(time.Since(start))
						reqs.Add(1)
						if !ok {
							errs.Add(1)
						}
					}
					i++
				}
			}(g)
		}
		wg.Wait()
	}

	var (
		hist obs.Histogram
		reqs atomic.Uint64
		errs atomic.Uint64
	)
	if warmup > 0 {
		runPhase(warmup, false, &hist, &reqs, &errs)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	runPhase(duration, true, &hist, &reqs, &errs)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	n := reqs.Load()
	res := Result{
		Mode:     mode,
		Requests: n,
		Errors:   errs.Load(),
		QPS:      float64(n) / elapsed.Seconds(),
		P50Ns:    hist.Quantile(0.50),
		P99Ns:    hist.Quantile(0.99),
	}
	if n > 0 {
		res.AllocsPerRequest = float64(after.Mallocs-before.Mallocs) / float64(n)
	}
	return res
}

// runOpen schedules arrivals at the target rate and measures each
// request's latency from its scheduled arrival time: a late start caused
// by every worker being busy counts against the tail, so overload shows
// up as latency rather than as a quietly slower arrival stream.
func runOpen(client *http.Client, w *workload, conc int, qps float64, deadline time.Time, hist *obs.Histogram, reqs, errs *atomic.Uint64) {
	if qps <= 0 {
		return
	}
	interval := time.Duration(float64(time.Second) / qps)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	arrivals := make(chan time.Time, 1<<16)
	var wg sync.WaitGroup
	for g := 0; g < conc; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g * 7919
			for scheduled := range arrivals {
				ok := w.issue(client, i)
				hist.ObserveDuration(time.Since(scheduled))
				reqs.Add(1)
				if !ok {
					errs.Add(1)
				}
				i++
			}
		}(g)
	}
	for next := time.Now(); next.Before(deadline); next = next.Add(interval) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		select {
		case arrivals <- next:
		default:
			// The arrival buffer is full: the system is hopelessly behind
			// the target rate. Count the arrival as an error rather than
			// blocking the scheduler (which would close the loop).
			reqs.Add(1)
			errs.Add(1)
		}
	}
	close(arrivals)
	wg.Wait()
}

// compare prints qps ratios against a baseline file and reports whether
// every shared scenario stayed above (1 - tolerance) of its baseline.
func compare(now map[string]Result, path string, tolerance float64) bool {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpcloadgen:", err)
		return false
	}
	var base map[string]Result
	if err := json.Unmarshal(blob, &base); err != nil {
		fmt.Fprintf(os.Stderr, "hpcloadgen: parsing %s: %v\n", path, err)
		return false
	}
	names := make([]string, 0, len(now))
	for name := range now {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	ok := true
	for _, name := range names {
		b, n := base[name], now[name]
		if b.QPS <= 0 {
			continue
		}
		ratio := n.QPS / b.QPS
		verdict := ""
		if tolerance > 0 && ratio < 1-tolerance {
			verdict = "  REGRESSION"
			ok = false
		}
		fmt.Fprintf(os.Stderr, "%-18s %9.0f qps vs %9.0f baseline  (%.2fx)%s\n",
			name, n.QPS, b.QPS, ratio, verdict)
	}
	return ok
}
