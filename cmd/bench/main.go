// bench runs the repository's benchmark suite and writes a
// machine-readable baseline: one record per benchmark with ns/op,
// B/op, and allocs/op. The committed BENCH_baseline.json is the first
// point of the perf trajectory; later runs are compared against it.
//
// Usage:
//
//	go run ./cmd/bench                     # write BENCH_baseline.json
//	go run ./cmd/bench -o /tmp/now.json    # write elsewhere
//	go run ./cmd/bench -benchtime 100ms    # steadier timings
//	go run ./cmd/bench -against BENCH_baseline.json -o /tmp/now.json
//	go run ./cmd/bench -against BENCH_baseline.json -alloc-strict
//
// With -against, the run prints a per-benchmark speedup column versus
// the given baseline and exits nonzero if any shared benchmark
// regressed by more than the -tolerance factor; -alloc-strict
// additionally fails the run if any shared benchmark's allocs/op
// increased, so zero-allocation hot paths cannot silently rot.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
)

// Record is one benchmark measurement.
type Record struct {
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	AllocsPerOp int64   `json:"allocs_op"`
}

// benchLine matches a `go test -bench` result line, e.g.
//
//	BenchmarkSparseCG-8   1   123456 ns/op   400 B/op   5 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	var (
		out         = flag.String("o", "BENCH_baseline.json", "output file")
		benchtime   = flag.String("benchtime", "1x", "go test -benchtime value")
		pattern     = flag.String("bench", ".", "go test -bench pattern")
		against     = flag.String("against", "", "baseline file to compare against (optional)")
		tolerance   = flag.Float64("tolerance", 0, "fail if ns/op regresses by more than this factor (0 = report only)")
		allocStrict = flag.Bool("alloc-strict", false, "with -against, fail if any shared benchmark's allocs/op increased")
	)
	flag.Parse()

	raw, err := runBenchmarks(*pattern, *benchtime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}
	records := parse(raw)
	if len(records) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmark results parsed")
		os.Exit(2)
	}

	buf, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}
	fmt.Printf("bench: wrote %d benchmarks to %s\n", len(records), *out)

	if *against != "" {
		if !compare(*against, records, *tolerance, *allocStrict) {
			os.Exit(1)
		}
	}
}

// runBenchmarks invokes the go tool and returns its combined output.
func runBenchmarks(pattern, benchtime string) ([]byte, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", pattern, "-benchtime", benchtime, "-benchmem", "./...")
	var outBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	return outBuf.Bytes(), nil
}

// parse extracts benchmark records from go test output. The -N
// GOMAXPROCS suffix is stripped so baselines compare across machines;
// sub-benchmark paths (workers=4, n=128) are preserved.
func parse(raw []byte) map[string]Record {
	records := map[string]Record{}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		rec := Record{NsPerOp: atof(m[2])}
		if m[4] != "" {
			rec.BytesPerOp = atoi(m[4])
		}
		if m[5] != "" {
			rec.AllocsPerOp = atoi(m[5])
		}
		records[m[1]] = rec
	}
	return records
}

func atof(s string) float64 { v, _ := strconv.ParseFloat(s, 64); return v }
func atoi(s string) int64   { v, _ := strconv.ParseInt(s, 10, 64); return v }

// compare prints per-benchmark speedups versus a baseline file and
// reports whether the run stays within tolerance. With allocStrict, an
// allocs/op increase on any shared benchmark is a failure on its own —
// the guard that keeps zero-alloc hot paths from silently rotting.
func compare(path string, now map[string]Record, tolerance float64, allocStrict bool) bool {
	buf, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return false
	}
	var base map[string]Record
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return false
	}
	names := make([]string, 0, len(now))
	for name := range now {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	ok := true
	for _, name := range names {
		b, n := base[name], now[name]
		if n.NsPerOp <= 0 || b.NsPerOp <= 0 {
			continue
		}
		speedup := b.NsPerOp / n.NsPerOp
		marker := ""
		if tolerance > 0 && speedup < 1/tolerance {
			marker = "  REGRESSED"
			ok = false
		}
		if allocStrict && n.AllocsPerOp > b.AllocsPerOp {
			marker += "  ALLOCS REGRESSED"
			ok = false
		}
		fmt.Printf("%-60s %10.0f -> %10.0f ns/op  %5.2fx  allocs %d -> %d%s\n",
			name, b.NsPerOp, n.NsPerOp, speedup, b.AllocsPerOp, n.AllocsPerOp, marker)
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "bench: regression versus %s\n", path)
	}
	return ok
}
