// hpcvet runs the repository's domain-aware static-analysis suite: unit
// safety for Mtops/Mflops, panic-free library code, deterministic
// computation paths, map-order-free exhibit emission, and no silently
// dropped in-module errors. See internal/analysis for checker semantics
// and the //hpcvet:allow suppression syntax.
//
// Usage:
//
//	hpcvet [flags] [patterns...]
//
//	hpcvet ./...               # vet the whole module (the default)
//	hpcvet ./internal/...      # one subtree
//	hpcvet -checks unitcast,errdrop ./...
//	hpcvet -json ./...         # machine-readable findings
//	hpcvet -list               # describe the checkers
//
// Exit code contract, for CI and tooling: 0 means the code is clean,
// 1 means at least one finding was reported, 2 means the analysis itself
// could not run (bad flags, unknown checker, parse or type error).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hpcvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		asJSON = fs.Bool("json", false, "emit findings as a JSON array")
		checks = fs.String("checks", "", "comma-separated checker names (default: all)")
		list   = fs.Bool("list", false, "list the checkers and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range analysis.Checkers() {
			fmt.Fprintf(stdout, "%-10s %s\n", c.Name(), c.Doc())
		}
		return 0
	}
	selected, err := analysis.Select(*checks)
	if err != nil {
		fmt.Fprintln(stderr, "hpcvet:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "hpcvet:", err)
		return 2
	}
	// Resolve relative patterns against the working directory, not the
	// module root, so "hpcvet ./internal/..." behaves like go vet.
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "hpcvet:", err)
		return 2
	}
	for i, p := range patterns {
		if !filepath.IsAbs(p) {
			patterns[i] = filepath.Join(cwd, p)
		}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "hpcvet:", err)
		return 2
	}
	findings := analysis.Run(pkgs, selected)
	for i := range findings {
		if rel, err := filepath.Rel(cwd, findings[i].Pos.Filename); err == nil {
			findings[i].Pos.Filename = rel
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "hpcvet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if !*asJSON {
			fmt.Fprintf(stderr, "hpcvet: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
