// hpcvet runs the repository's domain-aware static-analysis suite: unit
// safety for Mtops/Mflops, panic-free library code, deterministic
// computation paths, map-order-free exhibit emission, no silently dropped
// in-module errors, and — since v2 — the whole-program checkers: taintdet
// (nondeterminism flowing interprocedurally into exhibits, cache keys, or
// /v1 responses), locksafe (mutex discipline), goleak (unbounded
// goroutines), and allowaudit (stale suppressions). See internal/analysis
// for checker semantics and the //hpcvet:allow suppression syntax.
//
// Usage:
//
//	hpcvet [flags] [patterns...]
//
//	hpcvet ./...                    # vet the whole module (the default)
//	hpcvet ./internal/...           # one subtree
//	hpcvet -checks unitcast,errdrop ./...
//	hpcvet -format json ./...       # machine-readable findings
//	hpcvet -baseline ci/hpcvet_baseline.json ./...
//	hpcvet -stats ./...             # per-checker counts and timing to stderr
//	hpcvet -list                    # describe the checkers
//
// With -baseline, findings matching an entry in the baseline file are
// grandfathered: they are dropped from the output and do not fail the run,
// but entries that no longer match anything are reported to stderr as
// burned-down debt. -write-baseline regenerates the file from the current
// findings (for the initial grandfathering or after a deliberate burndown).
//
// Exit code contract, for CI and tooling: 0 means the code is clean
// (modulo baseline), 1 means at least one new finding was reported, 2
// means the analysis itself could not run (bad flags, unknown checker,
// parse or type error).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hpcvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		format    = fs.String("format", "text", "output format: text or json")
		asJSON    = fs.Bool("json", false, "shorthand for -format json")
		checks    = fs.String("checks", "", "comma-separated checker names (default: all)")
		list      = fs.Bool("list", false, "list the checkers and exit")
		baseline  = fs.String("baseline", "", "baseline file of grandfathered findings")
		writeBase = fs.Bool("write-baseline", false, "rewrite the -baseline file from current findings and exit")
		stats     = fs.Bool("stats", false, "print per-checker finding counts and timing to stderr")
		workers   = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel analysis workers (1 = sequential)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *asJSON {
		*format = "json"
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "hpcvet: unknown format %q (valid: text, json)\n", *format)
		return 2
	}
	if *list {
		for _, c := range analysis.Checkers() {
			fmt.Fprintf(stdout, "%-10s %s\n", c.Name(), c.Doc())
		}
		return 0
	}
	selected, err := analysis.Select(*checks)
	if err != nil {
		fmt.Fprintln(stderr, "hpcvet:", err)
		return 2
	}
	if *writeBase && *baseline == "" {
		fmt.Fprintln(stderr, "hpcvet: -write-baseline requires -baseline")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "hpcvet:", err)
		return 2
	}
	// Resolve relative patterns against the working directory, not the
	// module root, so "hpcvet ./internal/..." behaves like go vet.
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "hpcvet:", err)
		return 2
	}
	for i, p := range patterns {
		if !filepath.IsAbs(p) {
			patterns[i] = filepath.Join(cwd, p)
		}
	}
	loadStart := time.Now()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "hpcvet:", err)
		return 2
	}
	prog := analysis.NewProgram(loader, pkgs)
	loadDur := time.Since(loadStart)

	runStart := time.Now()
	findings := analysis.Run(prog, selected, analysis.Options{Workers: *workers})
	runDur := time.Since(runStart)

	if *writeBase {
		if err := analysis.WriteBaseline(*baseline, loader.ModRoot, findings); err != nil {
			fmt.Fprintln(stderr, "hpcvet:", err)
			return 2
		}
		fmt.Fprintf(stderr, "hpcvet: wrote %d finding(s) to %s\n", len(findings), *baseline)
		return 0
	}

	var grandfathered int
	if *baseline != "" {
		base, err := analysis.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "hpcvet:", err)
			return 2
		}
		var old []analysis.Finding
		allFindings := findings
		findings, old = base.Filter(loader.ModRoot, allFindings)
		grandfathered = len(old)
		if stale := base.Stale(loader.ModRoot, allFindings); len(stale) > 0 {
			fmt.Fprintf(stderr, "hpcvet: %d baseline entr(ies) no longer match any finding — burned down; remove them from %s:\n", len(stale), *baseline)
			for _, e := range stale {
				fmt.Fprintf(stderr, "  %s [%s] %s\n", e.File, e.Check, e.Message)
			}
		}
	}

	for i := range findings {
		if rel, err := filepath.Rel(cwd, findings[i].Pos.Filename); err == nil {
			findings[i].Pos.Filename = rel
		}
	}
	if *format == "json" {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "hpcvet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if *stats {
		counts := map[string]int{}
		for _, f := range findings {
			counts[f.Check]++
		}
		fmt.Fprintf(stderr, "hpcvet: %d package(s), load %s, analysis %s (%d worker(s))\n",
			len(pkgs), loadDur.Round(time.Millisecond), runDur.Round(time.Millisecond), *workers)
		for _, c := range selected {
			fmt.Fprintf(stderr, "  %-10s %d finding(s)\n", c.Name(), counts[c.Name()])
		}
		if n := counts["hpcvet"]; n > 0 {
			fmt.Fprintf(stderr, "  %-10s %d finding(s)\n", "hpcvet", n)
		}
		if grandfathered > 0 {
			fmt.Fprintf(stderr, "  grandfathered by baseline: %d\n", grandfathered)
		}
	}
	if len(findings) > 0 {
		if *format != "json" {
			fmt.Fprintf(stderr, "hpcvet: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
