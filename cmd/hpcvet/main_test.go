package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// chdirModuleRoot moves the test into the module root (the driver resolves
// patterns against the working directory) and restores it afterwards.
func chdirModuleRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(wd)) // cmd/hpcvet -> module root
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(wd); err != nil {
			t.Error(err)
		}
	})
}

func TestListExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errOut.String())
	}
	for _, name := range []string{"unitcast", "panicfree", "detrand", "maporder", "errdrop"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownCheckerExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-checks", "bogus"}, &out, &errOut); code != 2 {
		t.Errorf("unknown checker exited %d, want 2", code)
	}
}

func TestDirtyFixtureExitsOneWithJSON(t *testing.T) {
	chdirModuleRoot(t)
	var out, errOut strings.Builder
	code := run([]string{"-json", "./internal/analysis/testdata/src/panicfree"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("dirty fixture exited %d (stderr: %s)", code, errOut.String())
	}
	var findings []analysis.Finding
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(findings) != 1 || findings[0].Check != "panicfree" {
		t.Errorf("findings = %+v, want one panicfree finding", findings)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	chdirModuleRoot(t)
	var out, errOut strings.Builder
	if code := run([]string{"./internal/units"}, &out, &errOut); code != 0 {
		t.Errorf("clean package exited %d:\n%s%s", code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("clean package produced output: %s", out.String())
	}
}
