package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// chdirModuleRoot moves the test into the module root (the driver resolves
// patterns against the working directory) and restores it afterwards.
func chdirModuleRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(wd)) // cmd/hpcvet -> module root
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(wd); err != nil {
			t.Error(err)
		}
	})
}

func TestListExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errOut.String())
	}
	for _, name := range []string{
		"unitcast", "panicfree", "detrand", "maporder", "errdrop",
		"taintdet", "locksafe", "goleak", "allowaudit",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownCheckerExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-checks", "bogus"}, &out, &errOut); code != 2 {
		t.Errorf("unknown checker exited %d, want 2", code)
	}
	for _, name := range analysis.CheckerNames() {
		if !strings.Contains(errOut.String(), name) {
			t.Errorf("unknown-checker error omits valid name %q:\n%s", name, errOut.String())
		}
	}
}

func TestUnknownFormatExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-format", "xml"}, &out, &errOut); code != 2 {
		t.Errorf("unknown format exited %d, want 2", code)
	}
}

func TestDirtyFixtureExitsOneWithJSON(t *testing.T) {
	chdirModuleRoot(t)
	var out, errOut strings.Builder
	code := run([]string{"-json", "./internal/analysis/testdata/src/panicfree"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("dirty fixture exited %d (stderr: %s)", code, errOut.String())
	}
	var findings []analysis.Finding
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(findings) != 1 || findings[0].Check != "panicfree" {
		t.Errorf("findings = %+v, want one panicfree finding", findings)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	chdirModuleRoot(t)
	var out, errOut strings.Builder
	if code := run([]string{"./internal/units"}, &out, &errOut); code != 0 {
		t.Errorf("clean package exited %d:\n%s%s", code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("clean package produced output: %s", out.String())
	}
}

// TestFormatJSONMatchesJSONFlag: -format json and the legacy -json
// shorthand are the same machine-readable output.
func TestFormatJSONMatchesJSONFlag(t *testing.T) {
	chdirModuleRoot(t)
	fixture := "./internal/analysis/testdata/src/panicfree"
	var a, b, errOut strings.Builder
	if code := run([]string{"-format", "json", fixture}, &a, &errOut); code != 1 {
		t.Fatalf("-format json exited %d (stderr: %s)", code, errOut.String())
	}
	if code := run([]string{"-json", fixture}, &b, &errOut); code != 1 {
		t.Fatalf("-json exited %d (stderr: %s)", code, errOut.String())
	}
	if a.String() != b.String() {
		t.Errorf("-format json and -json diverge:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestBaselineWorkflow drives the grandfather-then-burn-down loop: write a
// baseline from a dirty fixture, rerun against it (clean), then check a
// narrower run reports the surviving entries as burned-down debt.
func TestBaselineWorkflow(t *testing.T) {
	chdirModuleRoot(t)
	fixture := "./internal/analysis/testdata/src/panicfree"
	base := filepath.Join(t.TempDir(), "baseline.json")

	var out, errOut strings.Builder
	if code := run([]string{"-baseline", base, "-write-baseline", fixture}, &out, &errOut); code != 0 {
		t.Fatalf("-write-baseline exited %d: %s", code, errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", base, fixture}, &out, &errOut); code != 0 {
		t.Fatalf("baselined run exited %d:\n%s%s", code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("grandfathered findings still printed:\n%s", out.String())
	}

	// A run that no longer produces the finding reports the entry as
	// burned down but stays clean.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", base, "-checks", "errdrop", fixture}, &out, &errOut); code != 0 {
		t.Fatalf("burndown run exited %d:\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "burned down") {
		t.Errorf("stale baseline entry not reported:\n%s", errOut.String())
	}
}

// TestMissingBaselineIsEmpty: a nonexistent baseline file behaves as an
// empty baseline, so a dirty fixture still fails.
func TestMissingBaselineIsEmpty(t *testing.T) {
	chdirModuleRoot(t)
	var out, errOut strings.Builder
	code := run([]string{"-baseline", filepath.Join(t.TempDir(), "nope.json"),
		"./internal/analysis/testdata/src/panicfree"}, &out, &errOut)
	if code != 1 {
		t.Errorf("dirty fixture with missing baseline exited %d, want 1", code)
	}
}

// TestStatsGoToStderr: -stats prints per-checker counts and timing on
// stderr, leaving stdout machine-clean.
func TestStatsGoToStderr(t *testing.T) {
	chdirModuleRoot(t)
	var out, errOut strings.Builder
	if code := run([]string{"-stats", "-format", "json", "./internal/units"}, &out, &errOut); code != 0 {
		t.Fatalf("-stats run exited %d: %s", code, errOut.String())
	}
	for _, want := range []string{"analysis", "taintdet", "finding(s)"} {
		if !strings.Contains(errOut.String(), want) {
			t.Errorf("-stats output missing %q:\n%s", want, errOut.String())
		}
	}
	if strings.Contains(out.String(), "finding(s)") {
		t.Error("-stats leaked into stdout")
	}
}
