// exportctl runs the basic-premises threshold analysis — the paper's
// recommended annual review — at a given date, printing the premise
// findings, the bounds, the application clusters, and the recommended
// thresholds under each selection perspective.
//
// Usage:
//
//	exportctl                     # the June 1995 snapshot (Figure 11)
//	exportctl -date 1997.5        # a later review
//	exportctl -date 1995.45 -capability   # include Table 16
//	exportctl -project            # add the frontier projection
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/catalog"
	"repro/internal/threshold"
)

func main() {
	var (
		date       = flag.Float64("date", 1995.45, "review date as a fractional year")
		capability = flag.Bool("capability", false, "print foreign capability (Table 16)")
		project    = flag.Bool("project", false, "print the frontier projection")
	)
	flag.Parse()

	s, err := threshold.Take(*date)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exportctl:", err)
		os.Exit(1)
	}

	fmt.Printf("Threshold analysis at %.2f\n", s.Date)
	fmt.Println("==========================")
	fmt.Printf("lower bound (line A):   %v — %s\n", s.LowerBound, s.LowerBoundSystem.Name)
	fmt.Printf("maximum available (D):  %v — %s\n", s.MaxAvailable, s.MaxAvailableSystem.Name)
	fmt.Println()

	fmt.Println("basic premises:")
	for _, p := range s.Premises {
		fmt.Printf("  %s\n", p)
	}
	fmt.Println()

	if lo, hi, ok := s.Range(); ok {
		fmt.Printf("valid threshold range: %v – %v\n", lo, hi)
	} else {
		fmt.Println("NO VALID THRESHOLD RANGE: the premises do not hold")
	}
	fmt.Println()

	fmt.Printf("applications above the lower bound: %d\n", len(s.Above))
	for _, c := range s.Clusters {
		marker := " "
		if c.Significant() {
			marker = "*"
		}
		fmt.Printf("  %s %s\n", marker, c)
	}
	fmt.Println()

	for _, p := range []threshold.Perspective{
		threshold.ControlMaximal, threshold.ApplicationDriven,
	} {
		if rec, ok := s.Recommend(p); ok {
			fmt.Printf("recommended threshold (%s): %v\n", p, rec)
		}
	}

	if *project {
		fmt.Println()
		fit, err := threshold.FrontierProjection(1992, 1999)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exportctl: projection:", err)
			os.Exit(1)
		}
		fmt.Printf("frontier growth: %s\n", fit)
		for _, target := range []float64{7500, 16000, 100000} {
			if yr, err := fit.YearReaching(target); err == nil {
				fmt.Printf("  frontier reaches %.0f Mtops ≈ %.1f\n", target, yr)
			}
		}
		if yr, err := threshold.YearAllMinimaUncontrollable(); err == nil {
			fmt.Printf("  all curated application minima overtaken ≈ %.1f\n", yr)
		}
	}

	if *capability {
		fmt.Println()
		rows, err := threshold.Table16(*date)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exportctl: capability:", err)
			os.Exit(1)
		}
		fmt.Println("foreign capability (applications above the old 1,500 Mtops threshold):")
		for _, r := range rows {
			fmt.Printf("  %-55s min %8.0f  RU:%-3v PRC:%-3v IN:%-3v\n",
				r.Application.Name, float64(r.Application.Min),
				yn(r.Capable[catalog.Russia]), yn(r.Capable[catalog.PRC]), yn(r.Capable[catalog.India]))
		}
	}
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
