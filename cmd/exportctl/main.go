// exportctl runs the basic-premises threshold analysis — the paper's
// recommended annual review — at a given date, printing the premise
// findings, the bounds, the application clusters, and the recommended
// thresholds under each selection perspective.
//
// Usage:
//
//	exportctl                     # the June 1995 snapshot (Figure 11)
//	exportctl -date 1997.5        # a later review
//	exportctl -date 1995.45 -capability   # include Table 16
//	exportctl -project            # add the frontier projection
//	exportctl -serve http://localhost:8095   # query a running hpcexportd
//	exportctl -serve ... -attempts 8         # more retries against a flaky daemon
//	exportctl -metrics            # pretty-print a daemon's metric snapshot
//	exportctl -scrape             # raw /metrics text exposition
//	exportctl -slo                # burn-rate SLO verdicts (daemon needs -slo)
//	exportctl -flightrec          # flight-recorder captures and pinned anomalies
//	exportctl -cluster            # per-backend health from a running hpcexportgw
//	exportctl -version            # print build information and exit
//
// Remote queries run through the resilient service client: bounded
// retries with jittered backoff and per-attempt timeouts, so a daemon
// under fault injection (hpcexportd -fault-profile) still converges.
// -attempts raises the per-call attempt budget; when any retries were
// needed, a summary goes to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/catalog"
	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/threshold"
)

func main() {
	var (
		date       = flag.Float64("date", 1995.45, "review date as a fractional year")
		capability = flag.Bool("capability", false, "print foreign capability (Table 16)")
		project    = flag.Bool("project", false, "print the frontier projection")
		serveURL   = flag.String("serve", "", "query a running hpcexportd at this base URL instead of computing locally")
		metrics    = flag.Bool("metrics", false, "pretty-print a running daemon's metric snapshot and exit")
		scrape     = flag.Bool("scrape", false, "print a running daemon's raw /metrics exposition and exit")
		sloFlag    = flag.Bool("slo", false, "print a running daemon's burn-rate SLO evaluation and exit")
		flightrec  = flag.Bool("flightrec", false, "print a running daemon's flight-recorder contents and exit")
		cluster    = flag.Bool("cluster", false, "print a running hpcexportgw's per-backend cluster health and exit")
		attempts   = flag.Int("attempts", 0, "attempt budget per remote call, first try included (0 = client default)")
		version    = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("exportctl", obs.BuildInfo())
		return
	}

	if *metrics || *scrape || *sloFlag || *flightrec || *cluster {
		base := *serveURL
		if base == "" {
			if *cluster {
				base = "http://" + gateway.DefaultAddr
			} else {
				base = "http://" + serve.DefaultAddr
			}
		}
		var err error
		switch {
		case *cluster:
			err = remoteCluster(base, *attempts)
		case *sloFlag:
			err = remoteSLO(base, *attempts)
		case *flightrec:
			err = remoteFlightRec(base, *attempts)
		default:
			err = remoteMetrics(base, *scrape, *attempts)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "exportctl:", err)
			os.Exit(1)
		}
		return
	}

	if *serveURL != "" {
		if *capability {
			fmt.Fprintln(os.Stderr, "exportctl: -capability is computed locally; drop it when using -serve")
			os.Exit(1)
		}
		if err := remoteReview(*serveURL, *date, *project, *attempts); err != nil {
			fmt.Fprintln(os.Stderr, "exportctl:", err)
			os.Exit(1)
		}
		return
	}

	s, err := threshold.Take(*date)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exportctl:", err)
		os.Exit(1)
	}

	fmt.Printf("Threshold analysis at %.2f\n", s.Date)
	fmt.Println("==========================")
	fmt.Printf("lower bound (line A):   %v — %s\n", s.LowerBound, s.LowerBoundSystem.Name)
	fmt.Printf("maximum available (D):  %v — %s\n", s.MaxAvailable, s.MaxAvailableSystem.Name)
	fmt.Println()

	fmt.Println("basic premises:")
	for _, p := range s.Premises {
		fmt.Printf("  %s\n", p)
	}
	fmt.Println()

	if lo, hi, ok := s.Range(); ok {
		fmt.Printf("valid threshold range: %v – %v\n", lo, hi)
	} else {
		fmt.Println("NO VALID THRESHOLD RANGE: the premises do not hold")
	}
	fmt.Println()

	fmt.Printf("applications above the lower bound: %d\n", len(s.Above))
	for _, c := range s.Clusters {
		marker := " "
		if c.Significant() {
			marker = "*"
		}
		fmt.Printf("  %s %s\n", marker, c)
	}
	fmt.Println()

	for _, p := range []threshold.Perspective{
		threshold.ControlMaximal, threshold.ApplicationDriven,
	} {
		if rec, ok := s.Recommend(p); ok {
			fmt.Printf("recommended threshold (%s): %v\n", p, rec)
		}
	}

	if *project {
		fmt.Println()
		fit, err := threshold.FrontierProjection(1992, 1999)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exportctl: projection:", err)
			os.Exit(1)
		}
		fmt.Printf("frontier growth: %s\n", fit)
		for _, target := range []float64{7500, 16000, 100000} {
			if yr, err := fit.YearReaching(target); err == nil {
				fmt.Printf("  frontier reaches %.0f Mtops ≈ %.1f\n", target, yr)
			}
		}
		if yr, err := threshold.YearAllMinimaUncontrollable(); err == nil {
			fmt.Printf("  all curated application minima overtaken ≈ %.1f\n", yr)
		}
	}

	if *capability {
		fmt.Println()
		rows, err := threshold.Table16(*date)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exportctl: capability:", err)
			os.Exit(1)
		}
		fmt.Println("foreign capability (applications above the old 1,500 Mtops threshold):")
		for _, r := range rows {
			fmt.Printf("  %-55s min %8.0f  RU:%-3v PRC:%-3v IN:%-3v\n",
				r.Application.Name, float64(r.Application.Min),
				yn(r.Capable[catalog.Russia]), yn(r.Capable[catalog.PRC]), yn(r.Capable[catalog.India]))
		}
	}
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// remoteClient builds the resilient service client for one command run.
func remoteClient(base string, attempts int) (*client.Client, error) {
	return client.NewWithOptions(base, client.Options{MaxAttempts: attempts})
}

// reportRetries notes on stderr when a command needed retries to finish.
func reportRetries(api *client.Client) {
	if rs := api.RetryStats(); rs.Retries > 0 {
		fmt.Fprintf(os.Stderr, "exportctl: %d of %d attempts were retries (%d transient failures)\n",
			rs.Retries, rs.Attempts, rs.Failures)
	}
}

// remoteMetrics prints a running daemon's telemetry: the raw text
// exposition under -scrape, otherwise a pretty-printed snapshot.
func remoteMetrics(base string, raw bool, attempts int) error {
	api, err := remoteClient(base, attempts)
	if err != nil {
		return err
	}
	defer reportRetries(api)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	if raw {
		text, err := api.MetricsText(ctx)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	}

	snap, err := api.Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("metrics from %s (%d instruments)\n", base, len(snap.Metrics))
	fmt.Println("==========================")
	for _, m := range snap.Metrics {
		switch m.Kind {
		case obs.KindHistogram:
			fmt.Printf("  %-12s %s%s  count %d  sum %d", m.Kind, m.Name, m.Labels, m.Count, m.Sum)
			if m.Count > 0 {
				fmt.Printf("  mean %.1f", m.Value)
			}
			fmt.Println()
		default:
			fmt.Printf("  %-12s %s%s  %g\n", m.Kind, m.Name, m.Labels, m.Value)
		}
	}
	return nil
}

// remoteSLO prints a running daemon's burn-rate evaluation: one line per
// route and signal with the three window burns and the verdict.
func remoteSLO(base string, attempts int) error {
	api, err := remoteClient(base, attempts)
	if err != nil {
		return err
	}
	defer reportRetries(api)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	resp, err := api.SLO(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("SLO evaluation from %s (profile %s)\n", base, resp.Profile)
	fmt.Println("==========================")
	for _, r := range resp.Routes {
		fmt.Printf("%s  (%s)\n", r.Route, r.Objective)
		for _, sig := range r.Signals {
			fmt.Printf("  %-13s %-5s", sig.Signal, sig.State)
			for _, w := range sig.Windows {
				fmt.Printf("  %s burn %.2f budget %.3f", w.Window, w.Burn, w.Budget)
			}
			fmt.Println()
		}
	}
	return nil
}

// remoteFlightRec prints a running daemon's flight recorder: the pinned
// anomaly groups first (they are why anyone looks), then the rolling
// window of recent captures, newest first.
func remoteFlightRec(base string, attempts int) error {
	api, err := remoteClient(base, attempts)
	if err != nil {
		return err
	}
	defer reportRetries(api)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	resp, err := api.FlightRec(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("flight recorder from %s: %d captures, %d pinned groups\n",
		base, resp.Count, len(resp.Pins))
	fmt.Println("==========================")
	for _, p := range resp.Pins {
		fmt.Printf("pin #%d  trigger %s\n", p.Seq, p.Trigger)
		for i := range p.Captures {
			printCapture(&p.Captures[i])
		}
	}
	if len(resp.Pins) > 0 && len(resp.Captures) > 0 {
		fmt.Println("recent captures:")
	}
	for i := range resp.Captures {
		printCapture(&resp.Captures[i])
	}
	return nil
}

// printCapture renders one flight-recorder capture on a single line.
func printCapture(c *obs.Capture) {
	fmt.Printf("  #%-6d %-4s %-16s %d  %8.2fms", c.Seq, c.Method, c.Route,
		c.Status, float64(c.LatencyNs)/1e6)
	if c.TraceID != "" {
		fmt.Printf("  trace %s", c.TraceID)
	}
	if c.Fault != "" {
		fmt.Printf("  fault %s", c.Fault)
	}
	if c.Degraded {
		fmt.Print("  degraded")
	}
	if c.WAL != "" {
		fmt.Printf("  wal %s", c.WAL)
	}
	if c.Breaker != "" {
		fmt.Printf("  breaker %q", c.Breaker)
	}
	if len(c.Anomalies) > 0 {
		fmt.Printf("  anomalies %v", c.Anomalies)
	}
	fmt.Println()
}

// remoteCluster prints a gateway's aggregated cluster view: the verdict
// line, the hedge counters (the byte-identity contract's scoreboard),
// and one row per backend with its routing state and probe history.
func remoteCluster(base string, attempts int) error {
	api, err := remoteClient(base, attempts)
	if err != nil {
		return err
	}
	defer reportRetries(api)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	var hr gateway.HealthResponse
	if err := api.GetJSON(ctx, "/v1/healthz", nil, &hr); err != nil {
		return err
	}
	if hr.Members == 0 && len(hr.Backends) == 0 {
		return fmt.Errorf("%s answers /v1/healthz but reports no cluster members — point -cluster at an hpcexportgw, not a backend", base)
	}
	fmt.Printf("cluster via %s: %s — %d/%d backends healthy, %d requests, up %.0fs\n",
		base, hr.Status, hr.Healthy, hr.Members, hr.Requests, hr.UptimeSeconds)
	fmt.Printf("hedged reads: %d, byte mismatches: %d\n", hr.Hedges, hr.HedgeMismatches)
	fmt.Println("==========================")
	fmt.Printf("%-30s %-9s %-12s %9s %7s %7s %8s\n",
		"backend", "state", "last", "requests", "errors", "drains", "rejoins")
	for _, b := range hr.Backends {
		last := b.LastStatus
		if last == "" {
			last = "-"
		}
		fmt.Printf("%-30s %-9s %-12s %9d %7d %7d %8d\n",
			b.URL, b.State, last, b.Requests, b.Errors, b.Drains, b.Rejoins)
	}
	return nil
}

// remoteReview prints the review by querying a running hpcexportd through
// the service client instead of computing the snapshot locally.
func remoteReview(base string, date float64, project bool, attempts int) error {
	api, err := remoteClient(base, attempts)
	if err != nil {
		return err
	}
	defer reportRetries(api)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	snap, err := api.Threshold(ctx, date, project)
	if err != nil {
		return err
	}

	fmt.Printf("Threshold analysis at %.2f (served by %s)\n", snap.Date, base)
	fmt.Println("==========================")
	fmt.Printf("lower bound (line A):   %.0f Mtops — %s\n", snap.LowerBoundMtops, snap.LowerBoundSystem)
	fmt.Printf("maximum available (D):  %.0f Mtops — %s\n", snap.MaxAvailableMtops, snap.MaxAvailableSystem)
	fmt.Println()

	fmt.Println("basic premises:")
	for _, p := range snap.Premises {
		verdict := "FAILS"
		if p.Holds {
			verdict = "holds"
		}
		fmt.Printf("  %s: %s (strength %.2f) — %s\n", p.Premise, verdict, p.Strength, p.Evidence)
	}
	fmt.Println()

	if snap.Range != nil {
		fmt.Printf("valid threshold range: %.0f – %.0f Mtops\n", snap.Range.LoMtops, snap.Range.HiMtops)
	} else {
		fmt.Println("NO VALID THRESHOLD RANGE: the premises do not hold")
	}
	fmt.Println()

	for _, c := range snap.Clusters {
		marker := " "
		if c.Significant {
			marker = "*"
		}
		fmt.Printf("  %s %s cluster: %d applications starting at %.0f Mtops\n",
			marker, c.Category, c.Apps, c.StartMtops)
	}
	fmt.Println()

	for _, rec := range snap.Recommendations {
		fmt.Printf("recommended threshold (%s): %.0f Mtops\n", rec.Perspective, rec.Mtops)
	}

	if snap.Projection != nil {
		fmt.Println()
		fmt.Printf("frontier growth: %s\n", snap.Projection.Formula)
		for _, tgt := range snap.Projection.Reaches {
			fmt.Printf("  frontier reaches %.0f Mtops ≈ %.1f\n", tgt.Mtops, tgt.Year)
		}
	}
	return nil
}
