// hpcexportd serves the reproduction's framework as a long-lived HTTP
// JSON API: license decisions under the regime, filterable catalog and
// application queries, and the basic-premises threshold snapshot, layered
// over the memoized exhibit substrates and per-request LRU caches.
//
// Usage:
//
//	hpcexportd                         # serve on localhost:8095
//	hpcexportd -addr :9000             # another address
//	hpcexportd -inflight 128 -timeout 5s -batch 512 -cache 65536
//	hpcexportd -quiet                  # no per-request log lines
//
// The daemon drains gracefully on SIGTERM or SIGINT: the listener closes
// at once, in-flight requests get -drain to finish, and the process exits
// zero on a clean drain.
//
// Endpoints (see README "Serving the framework" for curl examples):
//
//	POST /v1/license    {"system":"Cray C916","destination":"india"}
//	GET  /v1/license    ?ctp=21125&dest=france&threshold=1500
//	GET  /v1/catalog    ?origin=russia&minctp=100
//	GET  /v1/apps      ?mission=cryptology&deployed=false
//	GET  /v1/threshold  ?date=1995.45&project=true
//	GET  /v1/healthz
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", serve.DefaultAddr, "listen address")
		inflight = flag.Int("inflight", serve.DefaultMaxInFlight, "maximum concurrent requests")
		timeout  = flag.Duration("timeout", serve.DefaultRequestTimeout, "per-request deadline")
		batch    = flag.Int("batch", serve.DefaultMaxBatch, "largest accepted license batch")
		cache    = flag.Int("cache", serve.DefaultCacheSize, "entries per LRU cache")
		drain    = flag.Duration("drain", serve.DefaultDrainTimeout, "shutdown drain window")
		quiet    = flag.Bool("quiet", false, "disable per-request logging")
	)
	flag.Parse()

	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "hpcexportd ", log.LstdFlags)
	}
	s, err := serve.New(serve.Config{
		Addr:           *addr,
		MaxInFlight:    *inflight,
		RequestTimeout: *timeout,
		MaxBatch:       *batch,
		CacheSize:      *cache,
		DrainTimeout:   *drain,
		Clock:          time.Now,
		Logger:         logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpcexportd:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpcexportd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "hpcexportd: serving on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := s.Serve(ctx, ln); err != nil {
		fmt.Fprintln(os.Stderr, "hpcexportd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "hpcexportd: drained cleanly")
}
