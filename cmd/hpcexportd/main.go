// hpcexportd serves the reproduction's framework as a long-lived HTTP
// JSON API: license decisions under the regime, filterable catalog and
// application queries, and the basic-premises threshold snapshot, layered
// over the memoized exhibit substrates and per-request LRU caches.
//
// Usage:
//
//	hpcexportd                         # serve on localhost:8095
//	hpcexportd -addr :9000             # another address
//	hpcexportd -inflight 128 -timeout 5s -batch 512 -cache 65536
//	hpcexportd -quiet                  # no per-request log lines
//	hpcexportd -debug-addr localhost:6060   # pprof on a separate listener
//	hpcexportd -fault-seed 7 -fault-profile chaos   # deterministic fault injection
//	hpcexportd -data-dir /var/lib/hpcexportd        # durable decision log + warm start
//	hpcexportd -data-dir d -fsync every=64 -snapshot-every 4096
//	hpcexportd -slo availability=0.99,latency=50ms      # burn-rate SLO engine
//	hpcexportd -flightrec 512          # flight-recorder ring capacity (-1 disables)
//	hpcexportd -version                # print build info and exit
//
// The daemon drains gracefully on SIGTERM or SIGINT: the listener closes
// at once, in-flight requests get -drain to finish, and the process exits
// zero on a clean drain.
//
// Profiling endpoints (net/http/pprof) are never mounted on the public
// listener; they appear only on the loopback-intended -debug-addr
// listener when one is given.
//
// -fault-profile mounts deterministic fault injection (see README
// "Running under faults"): a preset (none, flaky, slow, chaos) or a spec
// like "error=0.3,latency=0.2,delay=2ms,poison=0.1", optionally with
// per-route overrides ("error=0.1;/v1/license:error=0.5"). The same
// -fault-seed replays the identical fault sequence; injected errors
// answer 503 with X-Fault-Injected, poisoned arrivals recompute without
// caches and mark X-Degraded, and /v1/healthz reports the fault totals.
//
// -data-dir mounts the durable decision log (see README "Durability and
// warm-start"): every license decision is committed to a checksummed
// append-only segment, and on restart the daemon replays the log into
// its decision cache so the first response to a previously-decided
// request is byte-identical to the pre-restart one. -fsync picks the
// durability barrier (always, never, or every=N records), and
// -snapshot-every bounds replay time by compacting the live decision set
// into a snapshot every N commits. A mounted log also enables GET
// /v1/watch, a Server-Sent-Events stream of threshold-regime transitions
// and injected fault/degraded events.
//
// -slo mounts the burn-rate SLO engine (see README "SLOs and the flight
// recorder"): a profile like "availability=0.999,latency=50ms" with
// optional per-route overrides ("...;/v1/healthz:off") sets error-budget
// objectives per route, evaluated over 5m/1h/6h windows at every scrape.
// GET /v1/slo reports burn rates and page/ticket verdicts, /metrics
// gains slo_burn_rate / slo_budget_remaining / slo_state gauges, and SLO
// state transitions are published on /v1/watch when a log is mounted.
//
// The flight recorder is always on: a fixed ring of recent request
// captures, dumpable at GET /v1/flightrec, in which anomalous requests
// (5xx, over-objective latency, degraded recompute, WAL regime
// transition) are pinned together with the captures that preceded them
// so the context survives ring wrap. -flightrec resizes the ring; a
// negative capacity disables capture entirely.
//
// Endpoints (see README "Serving the framework" for curl examples):
//
//	POST /v1/license    {"system":"Cray C916","destination":"india"}
//	GET  /v1/license    ?ctp=21125&dest=france&threshold=1500
//	GET  /v1/catalog    ?origin=russia&minctp=100
//	GET  /v1/apps      ?mission=cryptology&deployed=false
//	GET  /v1/threshold  ?date=1995.45&project=true
//	GET  /v1/healthz
//	GET  /v1/watch      ?since=N — SSE regime/fault event stream (needs -data-dir)
//	GET  /metrics       Prometheus text exposition
//	GET  /v1/metrics    the same registry as JSON
//	GET  /v1/traces     recent request traces
//	GET  /v1/slo        burn-rate evaluation (needs -slo)
//	GET  /v1/flightrec  flight-recorder captures and pinned anomalies
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/slo"
	"repro/internal/wal"
)

func main() {
	var (
		addr      = flag.String("addr", serve.DefaultAddr, "listen address")
		debugAddr = flag.String("debug-addr", "", "optional pprof listener address (keep it loopback); empty disables profiling")
		inflight  = flag.Int("inflight", serve.DefaultMaxInFlight, "maximum concurrent requests")
		timeout   = flag.Duration("timeout", serve.DefaultRequestTimeout, "per-request deadline")
		batch     = flag.Int("batch", serve.DefaultMaxBatch, "largest accepted license batch")
		cache     = flag.Int("cache", serve.DefaultCacheSize, "entries per LRU cache")
		drain     = flag.Duration("drain", serve.DefaultDrainTimeout, "shutdown drain window")
		traces    = flag.Int("traces", serve.DefaultTraceCapacity, "completed traces kept for /v1/traces; negative disables tracing")
		quiet     = flag.Bool("quiet", false, "disable per-request logging")
		faultSeed = flag.Uint64("fault-seed", 0, "seed for the deterministic fault schedule (with -fault-profile)")
		faultSpec = flag.String("fault-profile", "", "fault profile: none, flaky, slow, chaos, or an error=/latency=/delay=/poison= spec; empty disables injection")
		dataDir   = flag.String("data-dir", "", "directory for the durable decision log; empty runs without durability")
		fsyncSpec = flag.String("fsync", "always", "decision-log durability barrier: always, never, or every=N (with -data-dir)")
		snapEvery = flag.Int("snapshot-every", serve.DefaultSnapshotEvery, "decision commits between snapshot compactions (with -data-dir)")
		sloSpec   = flag.String("slo", "", "SLO profile, e.g. availability=0.999,latency=50ms;/v1/healthz:off; empty disables the burn-rate engine")
		flightCap = flag.Int("flightrec", 0, "flight-recorder ring capacity; 0 uses the default, negative disables capture")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("hpcexportd", obs.BuildInfo())
		return
	}

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	var plan *fault.Plan
	if *faultSpec != "" {
		prof, err := fault.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpcexportd:", err)
			os.Exit(1)
		}
		if plan, err = fault.NewPlan(*faultSeed, prof); err != nil {
			fmt.Fprintln(os.Stderr, "hpcexportd:", err)
			os.Exit(1)
		}
		if prof.String() != "none" {
			fmt.Fprintf(os.Stderr, "hpcexportd: fault injection active: seed %d, profile %s\n",
				*faultSeed, prof)
		}
	}

	var sloProf slo.Profile
	if *sloSpec != "" {
		var err error
		if sloProf, err = slo.Parse(*sloSpec); err != nil {
			fmt.Fprintln(os.Stderr, "hpcexportd:", err)
			os.Exit(1)
		}
		if sloProf.Active() {
			fmt.Fprintf(os.Stderr, "hpcexportd: SLO engine active: %s\n", sloProf)
		}
	}

	var log *wal.Log
	if *dataDir != "" {
		policy, err := wal.ParseFsyncPolicy(*fsyncSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpcexportd:", err)
			os.Exit(1)
		}
		if log, err = wal.Open(wal.Options{Dir: *dataDir, Fsync: policy}); err != nil {
			fmt.Fprintln(os.Stderr, "hpcexportd:", err)
			os.Exit(1)
		}
		defer func() { _ = log.Close() }()
		rec := log.Recovery()
		fmt.Fprintf(os.Stderr,
			"hpcexportd: decision log %s: %d records recovered (%d from snapshot, %d segments, fsync %s)\n",
			*dataDir, len(rec.Records), rec.SnapshotRecords, rec.Segments, policy)
		if rec.TornRecords > 0 || rec.CorruptRecords > 0 || rec.DroppedSnapshots > 0 {
			fmt.Fprintf(os.Stderr,
				"hpcexportd: decision log recovery skipped damage: %d torn, %d corrupt, %d unreadable snapshots\n",
				rec.TornRecords, rec.CorruptRecords, rec.DroppedSnapshots)
		}
	}

	s, err := serve.New(serve.Config{
		Addr:           *addr,
		MaxInFlight:    *inflight,
		RequestTimeout: *timeout,
		MaxBatch:       *batch,
		CacheSize:      *cache,
		DrainTimeout:   *drain,
		TraceCapacity:  *traces,
		Clock:          time.Now,
		Logger:         logger,
		Fault:          plan,
		WAL:            log,
		SnapshotEvery:  *snapEvery,
		SLO:            sloProf,
		FlightCapacity: *flightCap,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpcexportd:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpcexportd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "hpcexportd: serving on http://%s\n", ln.Addr())

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpcexportd: debug listener:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hpcexportd: pprof on http://%s/debug/pprof/\n", dln.Addr())
		go func() {
			dsrv := &http.Server{
				Handler:           debugMux(),
				ReadHeaderTimeout: 5 * time.Second,
			}
			if err := dsrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "hpcexportd: debug listener:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := s.Serve(ctx, ln); err != nil {
		fmt.Fprintln(os.Stderr, "hpcexportd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "hpcexportd: drained cleanly")
}

// debugMux builds the profiling mux served only on -debug-addr. The
// import of net/http/pprof is deliberately confined to this file so the
// serve package can assert its public handler never exposes it.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
