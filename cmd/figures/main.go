// figures regenerates the data series behind the paper's Figures 1–13.
//
// Usage:
//
//	figures              # all thirteen figures as aligned text
//	figures -n 11        # the June 1995 threshold snapshot
//	figures -n 6 -tsv    # tab-separated series for plotting
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
)

func main() {
	var (
		n   = flag.Int("n", 0, "figure number (1-13); 0 = all")
		tsv = flag.Bool("tsv", false, "emit tab-separated values")
	)
	flag.Parse()

	builders := report.Figures()
	emit := func(i int) {
		tbl, err := builders[i]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: figure %d: %v\n", i+1, err)
			os.Exit(1)
		}
		if *tsv {
			if err := tbl.TSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			return
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}

	if *n != 0 {
		if *n < 1 || *n > len(builders) {
			fmt.Fprintf(os.Stderr, "figures: no figure %d (have 1-%d)\n", *n, len(builders))
			os.Exit(1)
		}
		emit(*n - 1)
		return
	}
	for i := range builders {
		emit(i)
	}
}
