// figures regenerates the data series behind the paper's Figures 1–13.
//
// Usage:
//
//	figures              # all thirteen figures as aligned text
//	figures -n 11        # the June 1995 threshold snapshot
//	figures -n 6 -tsv    # tab-separated series for plotting
//	figures -workers 8   # build exhibits concurrently (0 = GOMAXPROCS)
//
// With -n 0 the figures are built concurrently over a worker pool and
// emitted in figure order; the bytes are identical at every worker count.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/parpool"
	"repro/internal/report"
)

func main() {
	var (
		n       = flag.Int("n", 0, "figure number (1-13); 0 = all")
		tsv     = flag.Bool("tsv", false, "emit tab-separated values")
		workers = flag.Int("workers", 0, "exhibit build workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	builders := report.Figures()
	emit := func(tbl *report.Table) {
		if *tsv {
			if err := tbl.TSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			return
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}

	if *n != 0 {
		if *n < 1 || *n > len(builders) {
			fmt.Fprintf(os.Stderr, "figures: no figure %d (have 1-%d)\n", *n, len(builders))
			os.Exit(1)
		}
		tbl, err := builders[*n-1]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: figure %d: %v\n", *n, err)
			os.Exit(1)
		}
		emit(tbl)
		return
	}

	pool := parpool.New(*workers)
	defer pool.Close()
	tables, err := report.BuildAll(pool, builders)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	for _, tbl := range tables {
		emit(tbl)
	}
}
