// hpcexportgw is the cluster front door: a consistent-hash routing
// gateway over N hpcexportd backends. Canonical decision keys — the same
// keys the backends' decision cache, singleflight group, and WAL use —
// route to a stable owner shard; a thundering herd on one key costs one
// backend computation cluster-wide; slow shards are hedged against a
// second replica and the two answers are compared byte-for-byte.
//
// Usage:
//
//	hpcexportgw -backends http://localhost:8095,http://localhost:8096
//	hpcexportgw -membership cluster.txt      # file-watched member list
//	hpcexportgw -addr :8094 -vnodes 128 -probe-every 1s -rejoin-after 3
//	hpcexportgw -no-hedge                    # disable hedged reads
//	hpcexportgw -version                     # print build info and exit
//
// The gateway drains gracefully on SIGTERM or SIGINT, like the backends.
//
// A backend whose /v1/healthz reports degraded or stops answering is
// drained: no new keys route to it, in-flight exchanges complete, and it
// rejoins only after -rejoin-after consecutive healthy probes. With
// -membership, the file (one backend URL per line, # comments) is
// re-read whenever its mtime changes; -backends seeds the member set
// until the file first parses.
//
// Endpoints (see README "Running a cluster"):
//
//	GET/POST /v1/license  keyed routing, singleflight, hedged reads;
//	                      batches scatter-gather across owner shards
//	GET  /v1/healthz      aggregated cluster health
//	GET  /metrics         the gateway's Prometheus exposition
//	GET  /v1/metrics      the same registry as JSON
//	GET  /v1/flightrec    hedge-mismatch flight recorder
//	everything else       proxied to the URI-hash owner backend
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/obs"
)

func main() {
	var (
		addr       = flag.String("addr", gateway.DefaultAddr, "listen address")
		backends   = flag.String("backends", "", "comma-separated backend base URLs (http://host:port)")
		membership = flag.String("membership", "", "membership file: one backend URL per line, re-read on change")
		vnodes     = flag.Int("vnodes", 0, "virtual nodes per backend on the hash ring (0 = default)")
		probeEvery = flag.Duration("probe-every", gateway.DefaultProbeEvery, "health-probe and membership-check cadence")
		probeTO    = flag.Duration("probe-timeout", gateway.DefaultProbeTimeout, "single health-probe deadline")
		rejoin     = flag.Int("rejoin-after", gateway.DefaultRejoinAfter, "consecutive healthy probes before a drained backend rejoins")
		attempts   = flag.Int("attempts", gateway.DefaultAttempts, "forwarding attempts per request")
		maxBatch   = flag.Int("batch", gateway.DefaultMaxBatch, "largest batch scatter-gathered (larger forwards whole)")
		noHedge    = flag.Bool("no-hedge", false, "disable hedged reads")
		hedgeCold  = flag.Duration("hedge-cold", gateway.DefaultHedgeCold, "hedge delay before latency history accumulates")
		drain      = flag.Duration("drain", gateway.DefaultDrainTimeout, "shutdown drain window")
		flightCap  = flag.Int("flightrec", 0, "flight-recorder ring capacity; 0 uses the default, negative disables capture")
		quiet      = flag.Bool("quiet", false, "disable event logging")
		version    = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("hpcexportgw", obs.BuildInfo())
		return
	}

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	var list []string
	if *backends != "" {
		list = strings.Split(*backends, ",")
	}
	g, err := gateway.New(gateway.Config{
		Addr:           *addr,
		Backends:       list,
		MembershipFile: *membership,
		VNodes:         *vnodes,
		ProbeEvery:     *probeEvery,
		ProbeTimeout:   *probeTO,
		RejoinAfter:    *rejoin,
		Attempts:       *attempts,
		MaxBatch:       *maxBatch,
		NoHedge:        *noHedge,
		HedgeCold:      *hedgeCold,
		DrainTimeout:   *drain,
		FlightCapacity: *flightCap,
		Logger:         logger,
		Clock:          time.Now,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpcexportgw:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpcexportgw:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "hpcexportgw: routing for %d backends on http://%s\n",
		len(g.Members()), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	g.Start(ctx)
	err = g.Serve(ctx, ln)
	stop()
	g.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpcexportgw:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "hpcexportgw: drained cleanly")
}
