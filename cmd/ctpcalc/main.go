// ctpcalc computes the Composite Theoretical Performance of a described
// machine configuration, the calculation exporters performed against the
// control threshold.
//
// Usage:
//
//	ctpcalc -clock 150 -fpu 1 -fxu 1 -bits 64 -procs 12 -mem shared
//	ctpcalc -procs 64 -mem distributed -net mesh -clock 40 -fpu 1.8
//	ctpcalc -list            # show the predefined processor elements
//	ctpcalc -proc "Alpha 21064" -procs 12 -mem shared
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/ctp"
	"repro/internal/units"
)

var networks = map[string]ctp.Interconnect{
	"ethernet": ctp.Ethernet10,
	"fddi":     ctp.FDDI,
	"atm":      ctp.ATM155,
	"hippi":    ctp.HiPPI,
	"mesh":     ctp.MeshMPP,
	"torus":    ctp.TorusMPP,
	"fattree":  ctp.FatTree,
	"xbar":     ctp.XBar,
}

func main() {
	var (
		list  = flag.Bool("list", false, "list predefined processor elements and exit")
		file  = flag.String("file", "", "read a JSON system specification instead of flags")
		name  = flag.String("proc", "", "use a predefined processor element (substring match)")
		clock = flag.Float64("clock", 0, "clock rate, MHz (custom element)")
		fpu   = flag.Float64("fpu", 0, "floating-point operations per cycle (custom element)")
		fxu   = flag.Float64("fxu", 0, "fixed-point operations per cycle (custom element)")
		bits  = flag.Int("bits", 64, "operand word length, bits (custom element)")
		procs = flag.Int("procs", 1, "number of processors")
		mem   = flag.String("mem", "shared", "memory model: shared or distributed")
		net   = flag.String("net", "mesh", "interconnect for distributed memory: ethernet, fddi, atm, hippi, mesh, torus, fattree, xbar")
	)
	flag.Parse()

	if *list {
		fmt.Println("predefined processor elements:")
		for _, e := range ctp.AllElements() {
			fmt.Printf("  %-34s %d  TP %8.1f Mtops  (published %.1f)\n",
				e.Name, e.Year, float64(e.TP()), e.MtopsRef)
		}
		return
	}

	if *file != "" {
		rateSpecFile(*file)
		return
	}

	elem, err := chooseElement(*name, *clock, *fpu, *fxu, *bits)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctpcalc:", err)
		os.Exit(1)
	}

	var sys ctp.System
	switch *mem {
	case "shared":
		sys = ctp.SMP("described system", elem, *procs)
	case "distributed":
		ic, ok := networks[strings.ToLower(*net)]
		if !ok {
			fmt.Fprintf(os.Stderr, "ctpcalc: unknown interconnect %q\n", *net)
			os.Exit(1)
		}
		sys = ctp.MPP("described system", elem, *procs, ic)
	default:
		fmt.Fprintf(os.Stderr, "ctpcalc: unknown memory model %q\n", *mem)
		os.Exit(1)
	}

	rating, err := sys.CTP()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctpcalc:", err)
		os.Exit(1)
	}

	fmt.Printf("element:     %s (TP %.1f Mtops)\n", elem.Name, float64(elem.TP()))
	fmt.Printf("processors:  %d, %s\n", *procs, sys.Memory)
	if sys.Memory == ctp.DistributedMemory {
		fmt.Printf("interconnect: %s (coupling %.2f)\n",
			sys.Interconnect.Name, ctp.CouplingFactor(sys.Interconnect.Bandwidth))
	}
	fmt.Printf("CTP:         %s\n", rating)
	for _, th := range []struct {
		level float64
		label string
	}{
		{195, "1991 bilateral threshold"},
		{1500, "1994 threshold (current in the study)"},
		{4600, "mid-1995 lower bound of controllability"},
	} {
		rel := "below"
		if float64(rating) >= th.level {
			rel = "AT OR ABOVE"
		}
		fmt.Printf("             %s the %s (%.0f Mtops)\n", rel, th.label, th.level)
	}
}

// rateSpecFile rates a system described in a JSON specification file.
func rateSpecFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctpcalc:", err)
		os.Exit(1)
	}
	defer f.Close()
	spec, err := ctp.ParseSpec(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctpcalc:", err)
		os.Exit(1)
	}
	sys, err := spec.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctpcalc:", err)
		os.Exit(1)
	}
	rating, err := sys.CTP()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctpcalc:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d elements, %s\n", sys.Name, sys.Elements(), sys.Memory)
	fmt.Printf("CTP: %s\n", rating)
}

// chooseElement resolves a predefined element by name or builds a custom
// one from the flag values.
func chooseElement(name string, clock, fpu, fxu float64, bits int) (ctp.Element, error) {
	if name != "" {
		lower := strings.ToLower(name)
		var hits []ctp.CatalogElement
		for _, e := range ctp.AllElements() {
			if strings.Contains(strings.ToLower(e.Name), lower) {
				hits = append(hits, e)
			}
		}
		switch len(hits) {
		case 1:
			return hits[0].Element, nil
		case 0:
			return ctp.Element{}, fmt.Errorf("no element matches %q (try -list)", name)
		default:
			var names []string
			for _, h := range hits {
				names = append(names, h.Name)
			}
			return ctp.Element{}, fmt.Errorf("%q is ambiguous: %s", name, strings.Join(names, "; "))
		}
	}
	if clock <= 0 || (fpu <= 0 && fxu <= 0) {
		return ctp.Element{}, fmt.Errorf("describe a custom element with -clock and -fpu/-fxu, or pick one with -proc")
	}
	var fus []ctp.FunctionalUnit
	if fpu > 0 {
		fus = append(fus, ctp.FunctionalUnit{Kind: ctp.FloatingPoint, Bits: bits, OpsPerCycle: fpu})
	}
	if fxu > 0 {
		fus = append(fus, ctp.FunctionalUnit{Kind: ctp.FixedPoint, Bits: bits, OpsPerCycle: fxu})
	}
	return ctp.Element{
		Name:  fmt.Sprintf("custom %.0f MHz", clock),
		Clock: units.MHz(clock),
		Units: fus,
	}, nil
}
