// tables regenerates the paper's Tables 1–16.
//
// Usage:
//
//	tables              # all sixteen tables as aligned text
//	tables -n 4         # one table
//	tables -n 5 -tsv    # tab-separated output for further processing
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
)

func main() {
	var (
		n        = flag.Int("n", 0, "table number (1-16); 0 = all")
		tsv      = flag.Bool("tsv", false, "emit tab-separated values")
		appendix = flag.Bool("appendix", false, "emit the appendix exhibits (A1-A8) instead")
	)
	flag.Parse()

	builders := report.Tables()
	if *appendix {
		builders = report.Extras()
	}
	emit := func(i int) {
		tbl, err := builders[i]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: table %d: %v\n", i+1, err)
			os.Exit(1)
		}
		if *tsv {
			if err := tbl.TSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "tables:", err)
				os.Exit(1)
			}
			return
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
	}

	if *n != 0 {
		if *n < 1 || *n > len(builders) {
			fmt.Fprintf(os.Stderr, "tables: no table %d (have 1-%d)\n", *n, len(builders))
			os.Exit(1)
		}
		emit(*n - 1)
		return
	}
	for i := range builders {
		emit(i)
	}
}
