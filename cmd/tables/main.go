// tables regenerates the paper's Tables 1–16.
//
// Usage:
//
//	tables              # all sixteen tables as aligned text
//	tables -n 4         # one table
//	tables -n 5 -tsv    # tab-separated output for further processing
//	tables -workers 8   # build exhibits concurrently (0 = GOMAXPROCS)
//	tables -stats       # worker-pool telemetry on stderr after the build
//
// With -n 0 the tables are built concurrently over a worker pool and
// emitted in table order; the bytes are identical at every worker count —
// including under -stats, whose observer only times the work.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/parpool"
	"repro/internal/report"
)

func main() {
	var (
		n        = flag.Int("n", 0, "table number (1-16); 0 = all")
		tsv      = flag.Bool("tsv", false, "emit tab-separated values")
		appendix = flag.Bool("appendix", false, "emit the appendix exhibits (A1-A8) instead")
		workers  = flag.Int("workers", 0, "exhibit build workers (0 = GOMAXPROCS)")
		stats    = flag.Bool("stats", false, "print worker-pool telemetry to stderr after the build")
	)
	flag.Parse()

	builders := report.Tables()
	if *appendix {
		builders = report.Extras()
	}
	emit := func(tbl *report.Table) {
		if *tsv {
			if err := tbl.TSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "tables:", err)
				os.Exit(1)
			}
			return
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
	}

	if *n != 0 {
		if *n < 1 || *n > len(builders) {
			fmt.Fprintf(os.Stderr, "tables: no table %d (have 1-%d)\n", *n, len(builders))
			os.Exit(1)
		}
		tbl, err := builders[*n-1]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: table %d: %v\n", *n, err)
			os.Exit(1)
		}
		emit(tbl)
		return
	}

	pool := parpool.New(*workers)
	defer pool.Close()
	var reg *obs.Registry
	if *stats {
		reg = obs.NewRegistry()
		pool.Observe(obs.NewPoolObserver(reg, "tables"), time.Now)
	}
	tables, err := report.BuildAll(pool, builders)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
	for _, tbl := range tables {
		emit(tbl)
	}
	if *stats {
		if err := reg.WriteProm(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "tables: stats:", err)
			os.Exit(1)
		}
	}
}
