// license evaluates an export-license application under the supercomputer
// regime, and can replay the policy timeline against the framework.
//
// Usage:
//
//	license -dest "South Korea" -ctp 2000                # under the 1,500 threshold
//	license -dest India -ctp 8000 -threshold 4600        # under a raised threshold
//	license -system "Cray C916" -dest Sweden             # rate a cataloged system
//	license -history                                     # replay the policy timeline
//	license -destinations                                # list known destinations
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/catalog"
	"repro/internal/regime"
	"repro/internal/safeguards"
	"repro/internal/units"
)

func main() {
	var (
		dest         = flag.String("dest", "", "destination country")
		ctpFlag      = flag.Float64("ctp", 0, "system CTP in Mtops")
		system       = flag.String("system", "", "catalog system name (alternative to -ctp)")
		threshold    = flag.Float64("threshold", 1500, "control threshold in Mtops (1,500 was in force during the study)")
		endUse       = flag.String("enduse", "", "declared end use")
		history      = flag.Bool("history", false, "replay the policy timeline against the framework")
		destinations = flag.Bool("destinations", false, "list known destinations and tiers")
	)
	flag.Parse()

	switch {
	case *history:
		printHistory()
	case *destinations:
		for _, d := range safeguards.KnownDestinations() {
			fmt.Printf("  %-16s %v\n", d, safeguards.TierOf(d))
		}
	default:
		evaluate(*dest, *ctpFlag, *system, *threshold, *endUse)
	}
}

func evaluate(dest string, ctpVal float64, system string, threshold float64, endUse string) {
	if system != "" {
		s, ok := catalog.Lookup(system)
		if !ok {
			fmt.Fprintf(os.Stderr, "license: system %q not in catalog\n", system)
			os.Exit(1)
		}
		ctpVal = float64(s.CTP)
		fmt.Printf("system: %s\n", s)
	}
	if dest == "" || ctpVal <= 0 {
		fmt.Fprintln(os.Stderr, "license: need -dest and -ctp (or -system); see -h")
		os.Exit(1)
	}
	d, err := safeguards.Evaluate(safeguards.License{
		Destination: dest,
		CTP:         units.Mtops(ctpVal),
		EndUse:      endUse,
	}, units.Mtops(threshold))
	if err != nil {
		fmt.Fprintln(os.Stderr, "license:", err)
		os.Exit(1)
	}
	fmt.Println(d)
}

func printHistory() {
	fmt.Println("HPC export-control policy timeline, evaluated by the framework")
	fmt.Println("===============================================================")
	for _, e := range regime.Timeline() {
		fmt.Printf("\n%.2f  [%v] %s\n       %s\n", e.Date, e.Kind, e.Citation, e.Summary)
		if e.Threshold == 0 {
			continue
		}
		fmt.Printf("       threshold: %s\n", e.Threshold)
		if yr, ok := regime.YearOvertaken(e, 2000); ok {
			fmt.Printf("       overtaken by the Western uncontrollability frontier ≈ %.1f\n", yr)
		} else {
			fmt.Printf("       not overtaken by 2000\n")
		}
	}
}
