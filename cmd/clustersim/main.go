// clustersim runs the parallel-machine simulator across the Table 5
// architecture spectrum and the granularity workload suite, printing
// simulated speedups and efficiencies — the study's evidence that a
// workstation cluster is not the equal of a tightly coupled system of the
// same CTP.
//
// Usage:
//
//	clustersim                  # full fleet × suite at 16 processors
//	clustersim -procs 64        # a larger configuration
//	clustersim -scaling         # Ethernet cluster vs MPP scaling curves
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ctpgap"
	"repro/internal/simmach"
	"repro/internal/workload"
)

func main() {
	var (
		procs   = flag.Int("procs", 16, "processors per machine")
		scaling = flag.Bool("scaling", false, "print scaling curves instead of the fleet matrix")
		gap     = flag.Bool("gap", false, "print the CTP-vs-deliverable gap analysis")
	)
	flag.Parse()

	if *scaling {
		scalingCurves()
		return
	}
	if *gap {
		gapAnalysis(*procs)
		return
	}

	fleet := simmach.Fleet(*procs)
	suite := workload.Suite()

	fmt.Printf("simulated speedup (efficiency), %d processors\n\n", *procs)
	fmt.Printf("%-28s", "architecture")
	for _, w := range suite {
		fmt.Printf("  %24s", w.Name())
	}
	fmt.Println()
	for _, m := range fleet {
		fmt.Printf("%-28s", m.Name)
		for _, w := range suite {
			r, err := simmach.Run(m, w)
			if err != nil {
				fmt.Fprintln(os.Stderr, "clustersim:", err)
				os.Exit(1)
			}
			fmt.Printf("  %16.1fx (%3.0f%%)", r.Speedup, r.Efficiency*100)
		}
		fmt.Println()
	}
	fmt.Println("\nnote: the cluster rows justify the paper's rule that a threshold")
	fmt.Println("based on cluster performance must not be applied to tightly coupled systems.")
}

// gapAnalysis prints deliverable Mflops per rated Mtops across the fleet —
// the Chapter 6 argument that CTP cannot see deliverable performance.
func gapAnalysis(procs int) {
	rows, err := ctpgap.Analyze(procs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
	fmt.Printf("deliverable Mflops per rated Mtops, %d processors\n\n", procs)
	fmt.Printf("%-28s  %12s  %-28s  %12s  %10s\n",
		"machine", "rated Mtops", "workload", "sustained MF", "MF/Mtops")
	for _, r := range rows {
		fmt.Printf("%-28s  %12.0f  %-28s  %12.0f  %10.3f\n",
			r.Machine, float64(r.Rated), r.Workload, r.Sustained, r.PerMtops)
	}
	fmt.Println("\nspread of deliverable-per-rated across the spectrum, by workload:")
	for _, s := range ctpgap.Spreads(rows) {
		fmt.Printf("  %-28s  ×%.1f  (best: %s, worst: %s)\n",
			s.Workload, s.Ratio, s.Best.Machine, s.Worst.Machine)
	}
}

// scalingCurves prints speedup vs. processor count for the stencil
// workload on an Ethernet cluster and a mesh MPP — the note 53 experiment.
func scalingCurves() {
	w := workload.DefaultStencil()
	fmt.Println("2-D stencil speedup vs. processors (note 53 reproduction)")
	fmt.Printf("%8s  %18s  %18s\n", "procs", "Ethernet cluster", "MPP mesh")
	for _, p := range []int{1, 2, 4, 8, 12, 16, 24, 32, 64} {
		eth, err := simmach.Run(simmach.Cluster("eth", p, 50, simmach.NetEthernet, true), w)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clustersim:", err)
			os.Exit(1)
		}
		mpp, err := simmach.Run(simmach.MPP("mesh", p, 50, simmach.NetMesh), w)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clustersim:", err)
			os.Exit(1)
		}
		fmt.Printf("%8d  %17.1fx  %17.1fx\n", p, eth.Speedup, mpp.Speedup)
	}
	fmt.Println("\nthe cluster saturates near 8-12 nodes; the MPP keeps scaling.")
}
