// export dumps the reproduction's datasets as JSON for downstream use:
// the system catalog, the application-requirements database, the policy
// timeline, and the glossary.
//
// Usage:
//
//	export -what catalog     # the system records
//	export -what apps        # the Chapter 4 applications
//	export -what timeline    # the policy history
//	export -what glossary    # Appendix A
//	export -what all         # one object with all four
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
)

func main() {
	what := flag.String("what", "all", "dataset: catalog, apps, timeline, glossary, all")
	flag.Parse()

	v, err := report.Dataset(*what)
	if err != nil {
		fmt.Fprintln(os.Stderr, "export:", err)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "export:", err)
		os.Exit(1)
	}
}
