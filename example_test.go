package hpcexport_test

import (
	"fmt"

	hpcexport "repro"
)

// The June 1995 threshold analysis — the paper's Figure 11 in four lines.
func ExampleTakeSnapshot() {
	snap, err := hpcexport.TakeSnapshot(1995.45)
	if err != nil {
		panic(err)
	}
	fmt.Println("lower bound:", snap.LowerBound)
	fmt.Println("set by:", snap.LowerBoundSystem.Name)
	fmt.Println("premises hold:", snap.Valid())
	// Output:
	// lower bound: 4,600 Mtops
	// set by: Cray CS6400
	// premises hold: true
}

// Rating a machine under the CTP rules.
func ExampleRatedSystem() {
	alpha := hpcexport.Microprocessors64()[2] // DEC Alpha 21064-150
	server := hpcexport.NewSMP("12-way server", alpha.Element, 12)
	rating, err := server.CTP()
	if err != nil {
		panic(err)
	}
	fmt.Println(rating)
	// Output:
	// 1,388 Mtops
}

// Licensing a sale under the regime in force during the study.
func ExampleEvaluateLicense() {
	decision, err := hpcexport.EvaluateLicense(hpcexport.ExportLicense{
		Destination: "Sweden",
		CTP:         2900, // an SGI Challenge XL
	}, 1500)
	if err != nil {
		panic(err)
	}
	fmt.Println(decision.Outcome)
	fmt.Println("safeguard conditions:", len(decision.Safeguards))
	// Output:
	// approve with safeguards
	// safeguard conditions: 3
}

// Looking a system up in the study's catalog.
func ExampleCatalogLookup() {
	sys, ok := hpcexport.CatalogLookup("Cray C916")
	if !ok {
		panic("missing")
	}
	fmt.Println(sys)
	// Output:
	// Cray C916 (21,125 Mtops)
}

// Expanding one of the paper's acronyms.
func ExampleGlossaryLookup() {
	expansion, _ := hpcexport.GlossaryLookup("CTP")
	fmt.Println(expansion)
	// Output:
	// Composite Theoretical Performance
}

// Parsing an Mtops figure the way the paper prints them.
func ExampleParseMtops() {
	v, err := hpcexport.ParseMtops("21,125 Mtops")
	if err != nil {
		panic(err)
	}
	fmt.Println(float64(v))
	// Output:
	// 21125
}
