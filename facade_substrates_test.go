package hpcexport

import (
	"strings"
	"testing"
)

// Facade coverage of the mission-substrate exports.

func TestAppendixAccessor(t *testing.T) {
	for n := 1; n <= 10; n++ {
		ex, err := Appendix(n)
		if err != nil {
			t.Errorf("Appendix(%d): %v", n, err)
			continue
		}
		if len(ex.Rows) == 0 {
			t.Errorf("Appendix(%d) empty", n)
		}
	}
	if _, err := Appendix(0); err == nil {
		t.Error("Appendix(0) accepted")
	}
	if _, err := Appendix(11); err == nil {
		t.Error("Appendix(11) accepted")
	}
}

func TestHydroThroughFacade(t *testing.T) {
	bar, err := NewImpactBar(ImpactMaterial{
		Name: "steel", Rho0: 7850, SoundSpd: 5000, Yield: 1e9, Hardening: 0.05,
	}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	bar.SetImpact(0.5, 100)
	if err := bar.Run(50); err != nil {
		t.Fatal(err)
	}
	if bar.PeakStress() <= 0 {
		t.Error("no stress developed")
	}
}

func TestCriticalityThroughFacade(t *testing.T) {
	m := FissileMaterial{Name: "toy", D: 1.2, SigmaA: 0.08, NuSigF: 0.16}
	ac, err := m.CriticalHalfThickness()
	if err != nil {
		t.Fatal(err)
	}
	r, err := SolveCriticality(m, ac, 100, 1e-9, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if r.K < 0.98 || r.K > 1.02 {
		t.Errorf("k = %v at critical size", r.K)
	}
}

func TestRadarAndDesignThroughFacade(t *testing.T) {
	f := RadarFacet{SideM: 1, TiltRad: 0.5}
	if _, err := f.RCS(10e9); err != nil {
		t.Fatal(err)
	}
	flop, regime, err := DesignCostCEA(50, 150e6, 36)
	if err != nil {
		t.Fatal(err)
	}
	if flop <= 0 || !strings.Contains(regime.String(), "resonance") {
		t.Errorf("B-2 class problem: %v flop, %v", flop, regime)
	}
	res, err := OptimizeAirframe(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 256 {
		t.Errorf("joint sweep evaluations %d", res.Evaluations)
	}
	var _ AirframeDesign = res.Best
}

func TestSensorAndSwitchingThroughFacade(t *testing.T) {
	var s IRSensor = IRSensor{Name: "t", Pixels: 1 << 16, FrameHz: 10, BandsOrOps: 1}
	if s.RequiredMtops() <= 0 {
		t.Error("sensor budget non-positive")
	}
	var n SwitchNetwork
	if _, err := n.Latency(10); err == nil {
		t.Error("empty network accepted")
	}
}

func TestOutlookThroughFacade(t *testing.T) {
	o, err := ProjectOutlook(1992, 1999, 2005)
	if err != nil {
		t.Fatal(err)
	}
	if o.PremiseOneFails < 2000 {
		t.Errorf("premise one fails %v", o.PremiseOneFails)
	}
}

func TestSortAndRenderThroughFacade(t *testing.T) {
	data := []float64{3, 1, 2}
	if err := ParallelSortFloat64s(data, 2); err != nil {
		t.Fatal(err)
	}
	if data[0] != 1 || data[2] != 3 {
		t.Errorf("sorted %v", data)
	}
	var sc RenderScene
	if _, err := sc.Render(4, 4); err == nil {
		t.Error("empty scene rendered")
	}
}

func TestGlossaryThroughFacade(t *testing.T) {
	if v, ok := GlossaryLookup("CTP"); !ok || v == "" {
		t.Error("glossary lookup failed")
	}
}
